//! Local predicate evaluation during scans.
//!
//! Two evaluation strategies share the [`CompiledFilter`] representation:
//!
//! * the original tuple-at-a-time path ([`apply_filters`]), kept as the
//!   reference oracle, and
//! * whole-column kernels ([`filter_selection`]) that specialize each
//!   predicate to its column types once and produce a selection vector of
//!   surviving row ids — no per-row [`Value`] allocation, no per-row
//!   `position_of` lookup.
//!
//! Both resolve column positions once per operator via [`bind_filters`]
//! (satellite of the vectorization PR: `Chunk::position_of` is an
//! O(columns) scan and used to run per row per predicate).

use els_core::predicate::{CmpOp, Predicate};
use els_core::ColumnRef;
use els_storage::{Table, Value};

use crate::chunk::Chunk;
use crate::error::{ExecError, ExecResult};
use crate::metrics::ExecMetrics;

/// A local predicate compiled against one scan: either `column op constant`
/// or `column = column` within the same table.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledFilter {
    /// `column op value`.
    Cmp {
        /// The restricted column.
        column: ColumnRef,
        /// Operator.
        op: CmpOp,
        /// Constant.
        value: Value,
    },
    /// `left = right` with both columns in the scanned table.
    ColEq {
        /// First column.
        left: ColumnRef,
        /// Second column.
        right: ColumnRef,
    },
    /// `column IS NULL` / `column IS NOT NULL`.
    IsNull {
        /// The tested column.
        column: ColumnRef,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl CompiledFilter {
    /// Compile a local [`Predicate`]; join predicates are rejected.
    pub fn from_predicate(p: &Predicate) -> ExecResult<CompiledFilter> {
        match p {
            Predicate::LocalCmp { column, op, value } => {
                Ok(CompiledFilter::Cmp { column: *column, op: *op, value: value.clone() })
            }
            Predicate::LocalColEq { left, right } => {
                Ok(CompiledFilter::ColEq { left: *left, right: *right })
            }
            Predicate::IsNull { column, negated } => {
                Ok(CompiledFilter::IsNull { column: *column, negated: *negated })
            }
            Predicate::JoinEq { .. } | Predicate::JoinRange { .. } => Err(ExecError::InvalidPlan(
                format!("join predicate `{p}` cannot run as a scan filter"),
            )),
        }
    }

    /// Evaluate against one row of a chunk (SQL semantics: NULL comparisons
    /// are false).
    pub fn matches(&self, chunk: &Chunk, row: usize) -> ExecResult<bool> {
        match self {
            CompiledFilter::Cmp { column, op, value } => {
                let pos = chunk.require(*column)?;
                let v = chunk.data.column(pos)?.get(row)?;
                Ok(v.sql_cmp(value).map(|ord| op.eval(ord)).unwrap_or(false))
            }
            CompiledFilter::ColEq { left, right } => {
                let lp = chunk.require(*left)?;
                let rp = chunk.require(*right)?;
                let lv = chunk.data.column(lp)?.get(row)?;
                let rv = chunk.data.column(rp)?.get(row)?;
                Ok(lv.sql_eq(&rv))
            }
            CompiledFilter::IsNull { column, negated } => {
                let pos = chunk.require(*column)?;
                let is_null = chunk.data.column(pos)?.get(row)?.is_null();
                Ok(is_null != *negated)
            }
        }
    }
}

/// A filter whose column references have been resolved to physical column
/// positions, once, at operator-bind time.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundFilter {
    /// `column op value` with the column position resolved.
    Cmp {
        /// Position of the restricted column.
        pos: usize,
        /// Operator.
        op: CmpOp,
        /// Constant.
        value: Value,
    },
    /// `left = right`, both positions resolved.
    ColEq {
        /// Position of the first column.
        left: usize,
        /// Position of the second column.
        right: usize,
    },
    /// `column IS [NOT] NULL`, position resolved.
    IsNull {
        /// Position of the tested column.
        pos: usize,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl BoundFilter {
    /// Evaluate against one row (SQL semantics: NULL comparisons are
    /// false). The tuple-at-a-time reference path.
    pub fn matches(&self, table: &Table, row: usize) -> ExecResult<bool> {
        match self {
            BoundFilter::Cmp { pos, op, value } => {
                let v = table.column(*pos)?.get(row)?;
                Ok(v.sql_cmp(value).map(|ord| op.eval(ord)).unwrap_or(false))
            }
            BoundFilter::ColEq { left, right } => {
                let lv = table.column(*left)?.value_ref(row);
                let rv = table.column(*right)?.value_ref(row);
                Ok(lv.sql_eq(rv))
            }
            BoundFilter::IsNull { pos, negated } => {
                let is_null = !table.column(*pos)?.validity()[row];
                Ok(is_null != *negated)
            }
        }
    }
}

/// Resolve every filter's columns through `resolve`, collecting **all**
/// unresolvable references into one [`ExecError::ColumnsNotInSchema`].
pub fn bind_filters<F>(filters: &[CompiledFilter], mut resolve: F) -> ExecResult<Vec<BoundFilter>>
where
    F: FnMut(ColumnRef) -> Option<usize>,
{
    let mut bound = Vec::with_capacity(filters.len());
    let mut missing: Vec<ColumnRef> = Vec::new();
    for f in filters {
        let mut need = |c: ColumnRef| {
            resolve(c).unwrap_or_else(|| {
                if !missing.contains(&c) {
                    missing.push(c);
                }
                usize::MAX
            })
        };
        bound.push(match f {
            CompiledFilter::Cmp { column, op, value } => {
                BoundFilter::Cmp { pos: need(*column), op: *op, value: value.clone() }
            }
            CompiledFilter::ColEq { left, right } => {
                BoundFilter::ColEq { left: need(*left), right: need(*right) }
            }
            CompiledFilter::IsNull { column, negated } => {
                BoundFilter::IsNull { pos: need(*column), negated: *negated }
            }
        });
    }
    if missing.is_empty() {
        Ok(bound)
    } else {
        Err(ExecError::ColumnsNotInSchema(missing))
    }
}

/// [`bind_filters`] against a chunk's provenance.
pub fn bind_filters_to_chunk(
    filters: &[CompiledFilter],
    chunk: &Chunk,
) -> ExecResult<Vec<BoundFilter>> {
    bind_filters(filters, |c| chunk.position_of(c))
}

/// Apply a conjunction of filters to a chunk, counting comparisons.
pub fn apply_filters(
    chunk: &Chunk,
    filters: &[CompiledFilter],
    metrics: &mut ExecMetrics,
) -> ExecResult<Chunk> {
    if filters.is_empty() {
        return Ok(chunk.clone());
    }
    let bound = bind_filters_to_chunk(filters, chunk)?;
    let mut keep = Vec::new();
    for row in 0..chunk.num_rows() {
        let mut ok = true;
        for f in &bound {
            metrics.comparisons += 1;
            if !f.matches(&chunk.data, row)? {
                ok = false;
                break;
            }
        }
        if ok {
            keep.push(row);
        }
    }
    chunk.filter_rows(&keep)
}

/// One filter's per-row predicate, specialized to its column types once.
type RowPred<'a> = Box<dyn Fn(usize) -> bool + Sync + 'a>;

/// Specialize one bound filter against a table's concrete column types.
/// The returned closure captures borrowed payload slices — evaluating it
/// allocates nothing and performs no type dispatch.
fn compile_kernel<'a>(f: &'a BoundFilter, table: &'a Table) -> ExecResult<RowPred<'a>> {
    Ok(match f {
        BoundFilter::Cmp { pos, op, value } => {
            let col = table.column(*pos)?;
            let valid = col.validity();
            let op = *op;
            match (col.as_int_slice(), col.as_float_slice(), col.as_str_slice(), value) {
                (Some(data), _, _, Value::Int(c)) => {
                    let c = *c;
                    Box::new(move |i| valid[i] && op.eval(data[i].cmp(&c)))
                }
                (Some(data), _, _, Value::Float(c)) => {
                    let c = *c;
                    Box::new(move |i| valid[i] && op.eval((data[i] as f64).total_cmp(&c)))
                }
                (_, Some(data), _, Value::Int(c)) => {
                    let c = *c as f64;
                    Box::new(move |i| valid[i] && op.eval(data[i].total_cmp(&c)))
                }
                (_, Some(data), _, Value::Float(c)) => {
                    let c = *c;
                    Box::new(move |i| valid[i] && op.eval(data[i].total_cmp(&c)))
                }
                (_, _, Some(data), Value::Str(c)) => {
                    Box::new(move |i| valid[i] && op.eval(data[i].as_str().cmp(c.as_str())))
                }
                // NULL constant or incomparable types: SQL comparison is
                // unknown / false for every row.
                _ => Box::new(|_| false),
            }
        }
        BoundFilter::ColEq { left, right } => {
            let lc = table.column(*left)?;
            let rc = table.column(*right)?;
            let (lv, rv) = (lc.validity(), rc.validity());
            match (lc.as_int_slice(), rc.as_int_slice()) {
                (Some(a), Some(b)) => Box::new(move |i| lv[i] && rv[i] && a[i] == b[i]),
                _ => Box::new(move |i| lc.value_ref(i).sql_eq(rc.value_ref(i))),
            }
        }
        BoundFilter::IsNull { pos, negated } => {
            let valid = table.column(*pos)?.validity();
            let negated = *negated;
            Box::new(move |i| valid[i] == negated)
        }
    })
}

/// Evaluate a conjunction of bound filters over whole columns, producing
/// the selection vector of surviving row ids (ascending) in `sel`. The
/// first conjunct fills `sel`; every later conjunct compacts it in place
/// (counted by [`ExecMetrics::sel_reuses`]), so one scan allocates at most
/// one selection vector regardless of the number of predicates.
///
/// Charges exactly the comparisons the tuple-at-a-time path would: a row
/// is a candidate for conjunct `k` iff it survived conjuncts `1..k`, which
/// is precisely the set of filters the short-circuiting row loop evaluates.
pub fn filter_selection(
    table: &Table,
    bound: &[BoundFilter],
    sel: &mut Vec<u32>,
    metrics: &mut ExecMetrics,
) -> ExecResult<()> {
    sel.clear();
    let n = table.num_rows();
    // Beyond u32::MAX rows the `as u32` casts below would silently alias
    // row ids in release builds; refuse with a typed error instead.
    crate::error::check_rowid_range(n)?;
    if bound.is_empty() {
        sel.extend((0..n).map(crate::error::rowid));
        return Ok(());
    }
    let mut first = true;
    for f in bound {
        let pred = compile_kernel(f, table)?;
        if first {
            metrics.comparisons += n as u64;
            metrics.kernel_rows += n as u64;
            sel.extend((0..n).filter(|&i| pred(i)).map(crate::error::rowid));
            first = false;
        } else {
            metrics.comparisons += sel.len() as u64;
            metrics.kernel_rows += sel.len() as u64;
            metrics.sel_reuses += 1;
            sel.retain(|&i| pred(i as usize));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::{DataType, Table};

    fn chunk() -> Chunk {
        let mut t = Table::empty("t", &[("a", DataType::Int), ("b", DataType::Int)]);
        for (a, b) in [(1, 1), (2, 5), (3, 3), (4, 0)] {
            t.push_row(vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        Chunk::from_base_table(0, t)
    }

    fn c(col: usize) -> ColumnRef {
        ColumnRef::new(0, col)
    }

    #[test]
    fn cmp_filter_selects() {
        let ch = chunk();
        let f = CompiledFilter::Cmp { column: c(0), op: CmpOp::Ge, value: Value::Int(3) };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f], &mut m).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(m.comparisons, 4);
    }

    #[test]
    fn col_eq_filter_selects_agreeing_rows() {
        let ch = chunk();
        let f = CompiledFilter::ColEq { left: c(0), right: c(1) };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f], &mut m).unwrap();
        assert_eq!(out.num_rows(), 2); // (1,1) and (3,3)
    }

    #[test]
    fn conjunction_short_circuits() {
        let ch = chunk();
        let f1 = CompiledFilter::Cmp { column: c(0), op: CmpOp::Gt, value: Value::Int(100) };
        let f2 = CompiledFilter::Cmp { column: c(1), op: CmpOp::Gt, value: Value::Int(0) };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f1, f2], &mut m).unwrap();
        assert_eq!(out.num_rows(), 0);
        // First filter fails every row; second never evaluated.
        assert_eq!(m.comparisons, 4);
    }

    #[test]
    fn null_comparisons_are_false() {
        let mut t = Table::empty("t", &[("a", DataType::Int)]);
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        let ch = Chunk::from_base_table(0, t);
        let f = CompiledFilter::Cmp { column: c(0), op: CmpOp::Ne, value: Value::Int(5) };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f], &mut m).unwrap();
        // NULL <> 5 is unknown -> filtered out; 1 <> 5 is true.
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn join_predicates_rejected() {
        let p = Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0));
        assert!(CompiledFilter::from_predicate(&p).is_err());
        let p = Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(0, 1));
        assert!(CompiledFilter::from_predicate(&p).is_ok());
    }

    #[test]
    fn empty_filter_list_is_identity() {
        let ch = chunk();
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[], &mut m).unwrap();
        assert_eq!(out.num_rows(), ch.num_rows());
        assert_eq!(m.comparisons, 0);
    }

    #[test]
    fn is_null_filter_selects_null_rows() {
        let mut t = Table::empty("t", &[("a", DataType::Int)]);
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let ch = Chunk::from_base_table(0, t);
        let mut m = ExecMetrics::default();
        let nulls =
            apply_filters(&ch, &[CompiledFilter::IsNull { column: c(0), negated: false }], &mut m)
                .unwrap();
        assert_eq!(nulls.num_rows(), 2);
        let non_nulls =
            apply_filters(&ch, &[CompiledFilter::IsNull { column: c(0), negated: true }], &mut m)
                .unwrap();
        assert_eq!(non_nulls.num_rows(), 1);
    }

    #[test]
    fn is_null_predicate_compiles() {
        let p = Predicate::is_not_null(ColumnRef::new(0, 0));
        assert_eq!(
            CompiledFilter::from_predicate(&p).unwrap(),
            CompiledFilter::IsNull { column: ColumnRef::new(0, 0), negated: true }
        );
    }

    #[test]
    fn string_filters_work() {
        let mut t = Table::empty("t", &[("s", DataType::Str)]);
        for s in ["apple", "banana", "cherry"] {
            t.push_row(vec![Value::from(s)]).unwrap();
        }
        let ch = Chunk::from_base_table(0, t);
        let f = CompiledFilter::Cmp { column: c(0), op: CmpOp::Eq, value: Value::from("banana") };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f], &mut m).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn binding_reports_every_missing_column() {
        let ch = chunk();
        let filters = vec![
            CompiledFilter::Cmp {
                column: ColumnRef::new(7, 0),
                op: CmpOp::Eq,
                value: Value::Int(1),
            },
            CompiledFilter::ColEq { left: c(0), right: ColumnRef::new(8, 2) },
        ];
        let err = bind_filters_to_chunk(&filters, &ch).unwrap_err();
        match err {
            ExecError::ColumnsNotInSchema(missing) => {
                assert_eq!(missing, vec![ColumnRef::new(7, 0), ColumnRef::new(8, 2)]);
            }
            other => panic!("expected ColumnsNotInSchema, got {other:?}"),
        }
    }

    /// The kernels and the row-at-a-time loop must select identical rows
    /// and charge identical comparison counts.
    fn assert_kernel_parity(ch: &Chunk, filters: &[CompiledFilter]) {
        let mut row_m = ExecMetrics::default();
        let row_out = apply_filters(ch, filters, &mut row_m).unwrap();
        let bound = bind_filters_to_chunk(filters, ch).unwrap();
        let mut vec_m = ExecMetrics::default();
        let mut sel = Vec::new();
        filter_selection(&ch.data, &bound, &mut sel, &mut vec_m).unwrap();
        let keep: Vec<usize> = sel.iter().map(|&i| i as usize).collect();
        let vec_out = ch.filter_rows(&keep).unwrap();
        assert_eq!(vec_out.num_rows(), row_out.num_rows());
        for r in 0..row_out.num_rows() {
            assert_eq!(vec_out.data.row(r).unwrap(), row_out.data.row(r).unwrap(), "row {r}");
        }
        assert_eq!(vec_m.comparisons, row_m.comparisons, "comparison parity");
    }

    #[test]
    fn kernels_match_row_path_on_every_filter_shape() {
        let ch = chunk();
        let shapes: Vec<Vec<CompiledFilter>> = vec![
            vec![CompiledFilter::Cmp { column: c(0), op: CmpOp::Ge, value: Value::Int(3) }],
            vec![CompiledFilter::Cmp { column: c(1), op: CmpOp::Lt, value: Value::Float(3.5) }],
            vec![CompiledFilter::ColEq { left: c(0), right: c(1) }],
            vec![CompiledFilter::IsNull { column: c(0), negated: true }],
            // Conjunction exercises short-circuit/compaction parity.
            vec![
                CompiledFilter::Cmp { column: c(0), op: CmpOp::Gt, value: Value::Int(1) },
                CompiledFilter::Cmp { column: c(1), op: CmpOp::Le, value: Value::Int(3) },
            ],
            // NULL constant: nothing matches, everything still counted.
            vec![CompiledFilter::Cmp { column: c(0), op: CmpOp::Eq, value: Value::Null }],
            // Incomparable types: Int column vs Str constant.
            vec![CompiledFilter::Cmp { column: c(0), op: CmpOp::Eq, value: Value::from("x") }],
        ];
        for filters in &shapes {
            assert_kernel_parity(&ch, filters);
        }
    }

    #[test]
    fn kernels_match_row_path_with_nulls_and_floats() {
        let mut t = Table::empty("t", &[("f", DataType::Float), ("s", DataType::Str)]);
        t.push_row(vec![Value::Float(1.5), Value::from("a")]).unwrap();
        t.push_row(vec![Value::Null, Value::from("b")]).unwrap();
        t.push_row(vec![Value::Float(-2.0), Value::Null]).unwrap();
        t.push_row(vec![Value::Float(2.0), Value::from("c")]).unwrap();
        let ch = Chunk::from_base_table(0, t);
        let shapes: Vec<Vec<CompiledFilter>> = vec![
            vec![CompiledFilter::Cmp { column: c(0), op: CmpOp::Gt, value: Value::Int(0) }],
            vec![CompiledFilter::Cmp { column: c(0), op: CmpOp::Ne, value: Value::Float(2.0) }],
            vec![CompiledFilter::Cmp { column: c(1), op: CmpOp::Ge, value: Value::from("b") }],
            vec![CompiledFilter::IsNull { column: c(1), negated: false }],
            vec![
                CompiledFilter::IsNull { column: c(0), negated: true },
                CompiledFilter::Cmp { column: c(1), op: CmpOp::Lt, value: Value::from("z") },
            ],
        ];
        for filters in &shapes {
            assert_kernel_parity(&ch, filters);
        }
    }

    #[test]
    fn selection_vector_is_reused_across_conjuncts() {
        let ch = chunk();
        let filters = vec![
            CompiledFilter::Cmp { column: c(0), op: CmpOp::Gt, value: Value::Int(1) },
            CompiledFilter::Cmp { column: c(1), op: CmpOp::Gt, value: Value::Int(0) },
            CompiledFilter::Cmp { column: c(0), op: CmpOp::Lt, value: Value::Int(4) },
        ];
        let bound = bind_filters_to_chunk(&filters, &ch).unwrap();
        let mut m = ExecMetrics::default();
        let mut sel = Vec::new();
        filter_selection(&ch.data, &bound, &mut sel, &mut m).unwrap();
        assert_eq!(m.sel_reuses, 2);
        assert_eq!(m.kernel_rows, m.comparisons);
        assert_eq!(sel, vec![1, 2]); // rows (2,5) and (3,3)
    }

    #[test]
    fn empty_bound_filter_list_selects_everything() {
        let ch = chunk();
        let mut m = ExecMetrics::default();
        let mut sel = vec![9, 9]; // stale contents must be cleared
        filter_selection(&ch.data, &[], &mut sel, &mut m).unwrap();
        assert_eq!(sel, vec![0, 1, 2, 3]);
        assert_eq!(m.comparisons, 0);
    }
}
