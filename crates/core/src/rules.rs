//! Selectivity-choice rules for incremental estimation
//! (paper Sections 3.3 and 7).
//!
//! When a table is joined into an intermediate result, several *eligible*
//! join predicates may belong to one equivalence class; their effects are
//! not independent, so an estimator must pick how to combine them:
//!
//! * **Rule M** (multiplicative, System R [13]) uses *all* selectivities —
//!   and can underestimate catastrophically (paper Example 2: 1 instead of
//!   1000).
//! * **Rule SS** (smallest selectivity) picks the most selective predicate
//!   per class — the "intuitive" choice, still wrong (Example 3: 100).
//! * **Rule LS** (largest selectivity) — the paper's new rule, provably
//!   consistent with the closed form of Equation 3.
//! * **Representative** — the third strawman of Section 3.3: a fixed
//!   per-class selectivity applied once per join step; no fixed value is
//!   correct in all cases.

/// How to combine the eligible join selectivities within one equivalence
/// class at one join step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectivityRule {
    /// Multiply every eligible selectivity (Rule M).
    Multiplicative,
    /// Use only the smallest selectivity per class (Rule SS).
    SmallestSelectivity,
    /// Use only the largest selectivity per class (Rule LS — the paper's
    /// correct rule, and the default).
    #[default]
    LargestSelectivity,
    /// Use a fixed representative selectivity per class, once per step.
    Representative,
}

impl SelectivityRule {
    /// Short name as used in the paper's experiment table.
    pub fn short_name(self) -> &'static str {
        match self {
            SelectivityRule::Multiplicative => "M",
            SelectivityRule::SmallestSelectivity => "SS",
            SelectivityRule::LargestSelectivity => "LS",
            SelectivityRule::Representative => "REP",
        }
    }

    /// Combine the eligible selectivities of ONE class at one join step.
    /// `representative` is the class's fixed value (used only by
    /// [`SelectivityRule::Representative`]).
    ///
    /// **Contract:** an empty `eligible` slice means "no eligible join
    /// predicate applies at this step", and every order-based rule returns
    /// the neutral selectivity `1.0` (the estimate is left unchanged).
    /// Earlier revisions only `debug_assert!`ed here, so release builds
    /// silently produced `±inf` from the min/max folds and poisoned every
    /// downstream estimate.
    ///
    /// # Examples
    ///
    /// The paper's Example 3 choice between J1 (0.01) and J3 (0.001):
    ///
    /// ```
    /// use els_core::SelectivityRule;
    /// let eligible = [0.01, 0.001];
    /// assert_eq!(SelectivityRule::LargestSelectivity.combine(&eligible, 0.0), 0.01);
    /// assert_eq!(SelectivityRule::SmallestSelectivity.combine(&eligible, 0.0), 0.001);
    /// assert_eq!(SelectivityRule::SmallestSelectivity.combine(&[], 0.0), 1.0);
    /// ```
    pub fn combine(self, eligible: &[f64], representative: f64) -> f64 {
        if eligible.is_empty() && self != SelectivityRule::Representative {
            return 1.0;
        }
        match self {
            SelectivityRule::Multiplicative => eligible.iter().product(),
            SelectivityRule::SmallestSelectivity => {
                eligible.iter().copied().fold(f64::INFINITY, f64::min)
            }
            SelectivityRule::LargestSelectivity => {
                eligible.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            }
            SelectivityRule::Representative => representative,
        }
    }
}

/// How the per-class representative selectivity is derived for
/// [`SelectivityRule::Representative`]. The paper's example tries the
/// class's two distinct selectivities (0.01 and 0.001) and shows each fails
/// on one side; these strategies let the benchmarks replay that argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RepresentativeStrategy {
    /// The smallest selectivity among the class's join predicates.
    SmallestInClass,
    /// The largest selectivity among the class's join predicates.
    #[default]
    LargestInClass,
    /// The geometric mean of the class's join-predicate selectivities.
    GeometricMean,
}

impl RepresentativeStrategy {
    /// Derive the class representative from all of that class's predicate
    /// selectivities.
    ///
    /// **Contract:** an empty slice yields the neutral selectivity `1.0`
    /// (a class with no join predicates filters nothing). This used to be
    /// a `debug_assert!` only, letting release builds return `±inf` from
    /// the min/max folds.
    pub fn derive(self, class_selectivities: &[f64]) -> f64 {
        if class_selectivities.is_empty() {
            return 1.0;
        }
        match self {
            RepresentativeStrategy::SmallestInClass => {
                class_selectivities.iter().copied().fold(f64::INFINITY, f64::min)
            }
            RepresentativeStrategy::LargestInClass => {
                class_selectivities.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            }
            RepresentativeStrategy::GeometricMean => {
                let log_sum: f64 =
                    class_selectivities.iter().map(|s| s.max(f64::MIN_POSITIVE).ln()).sum();
                (log_sum / class_selectivities.len() as f64).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ELIGIBLE: [f64; 2] = [0.01, 0.001]; // J1 and J3 of the paper.

    #[test]
    fn rule_m_multiplies() {
        let s = SelectivityRule::Multiplicative.combine(&ELIGIBLE, 0.5);
        assert!((s - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn rule_ss_takes_smallest() {
        assert_eq!(SelectivityRule::SmallestSelectivity.combine(&ELIGIBLE, 0.5), 0.001);
    }

    #[test]
    fn rule_ls_takes_largest() {
        assert_eq!(SelectivityRule::LargestSelectivity.combine(&ELIGIBLE, 0.5), 0.01);
    }

    #[test]
    fn representative_ignores_eligible() {
        assert_eq!(SelectivityRule::Representative.combine(&ELIGIBLE, 0.42), 0.42);
    }

    #[test]
    fn single_eligible_selectivity_is_returned_by_all_order_rules() {
        for rule in [
            SelectivityRule::Multiplicative,
            SelectivityRule::SmallestSelectivity,
            SelectivityRule::LargestSelectivity,
        ] {
            assert_eq!(rule.combine(&[0.25], 0.9), 0.25, "{rule:?}");
        }
    }

    #[test]
    fn representative_strategies() {
        let sels = [0.01, 0.001, 0.001];
        assert_eq!(RepresentativeStrategy::SmallestInClass.derive(&sels), 0.001);
        assert_eq!(RepresentativeStrategy::LargestInClass.derive(&sels), 0.01);
        let gm = RepresentativeStrategy::GeometricMean.derive(&sels);
        let expected = (0.01f64 * 0.001 * 0.001).powf(1.0 / 3.0);
        assert!((gm - expected).abs() < 1e-12);
    }

    /// Regression: before the empty-slice contract, release builds (where
    /// `debug_assert!` compiles out) returned `+inf`/`-inf` from the
    /// min/max folds and `NaN`-free garbage from the product, poisoning
    /// every downstream cardinality. Empty input must be the neutral 1.0
    /// in every build profile.
    #[test]
    fn empty_eligible_is_neutral_not_infinite() {
        for rule in [
            SelectivityRule::Multiplicative,
            SelectivityRule::SmallestSelectivity,
            SelectivityRule::LargestSelectivity,
        ] {
            let s = rule.combine(&[], 0.42);
            assert!(s.is_finite(), "{rule:?} returned {s}");
            assert_eq!(s, 1.0, "{rule:?}");
        }
        // Representative still answers with its fixed per-class value.
        assert_eq!(SelectivityRule::Representative.combine(&[], 0.42), 0.42);
    }

    /// Regression companion for [`RepresentativeStrategy::derive`].
    #[test]
    fn empty_class_derives_neutral_representative() {
        for strategy in [
            RepresentativeStrategy::SmallestInClass,
            RepresentativeStrategy::LargestInClass,
            RepresentativeStrategy::GeometricMean,
        ] {
            let s = strategy.derive(&[]);
            assert!(s.is_finite(), "{strategy:?} returned {s}");
            assert_eq!(s, 1.0, "{strategy:?}");
        }
    }

    #[test]
    fn short_names_match_paper() {
        assert_eq!(SelectivityRule::Multiplicative.short_name(), "M");
        assert_eq!(SelectivityRule::SmallestSelectivity.short_name(), "SS");
        assert_eq!(SelectivityRule::LargestSelectivity.short_name(), "LS");
    }

    proptest::proptest! {
        #[test]
        fn rules_are_ordered_m_le_ss_le_ls(sels in proptest::collection::vec(1e-6f64..1.0, 1..6)) {
            let m = SelectivityRule::Multiplicative.combine(&sels, 0.0);
            let ss = SelectivityRule::SmallestSelectivity.combine(&sels, 0.0);
            let ls = SelectivityRule::LargestSelectivity.combine(&sels, 0.0);
            proptest::prop_assert!(m <= ss + 1e-15);
            proptest::prop_assert!(ss <= ls + 1e-15);
        }
    }
}
