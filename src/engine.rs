//! A batteries-included facade: register tables, run SQL, inspect plans.
//!
//! Two entry points share the pipeline (catalog → parser → binder →
//! optimizer → executor):
//!
//! * [`Database`] — a single-user, `&mut self` facade for scripts and
//!   tests.
//! * [`Engine`] — a concurrent, cache-fronted service: all query methods
//!   take `&self`, readers run against immutable catalog snapshots
//!   ([`els_catalog::SharedCatalog`]), and optimized plans are reused
//!   across threads through a fingerprint+epoch keyed
//!   [`els_optimizer::PlanCache`].
//!
//! [`Database`] wires the whole pipeline behind three calls:
//!
//! ```
//! use els::engine::Database;
//! use els::storage::datagen::{TableSpec, ColumnSpec, Distribution};
//!
//! let mut db = Database::new();
//! db.generate(
//!     TableSpec::new("t", 1000)
//!         .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
//!     42,
//! ).unwrap();
//! let result = db.execute("SELECT COUNT(*) FROM t WHERE k < 100").unwrap();
//! assert_eq!(result.count, 100);
//! ```
//!
//! The estimation algorithm is configurable per database (default: the
//! paper's Algorithm ELS) so the same workload can be replayed under the
//! baselines:
//!
//! ```
//! # use els::engine::Database;
//! use els::optimizer::EstimatorPreset;
//! let mut db = Database::new();
//! db.set_estimator(EstimatorPreset::Sss);
//! ```

use std::fmt;
use std::sync::Arc;

use crate::analyze::{
    build_operator_reports, harvest_feedback, ExplainAnalyzeReport, OperatorReport,
};

use els_catalog::collect::CollectOptions;
use els_catalog::{Catalog, CatalogSnapshot, FeedbackMode, SharedCatalog};
use els_exec::{
    execute_plan_buffered_observed_with, execute_plan_buffered_with, execute_plan_observed_with,
    execute_plan_with, EngineCountersSnapshot, ExecMetrics, ExecMode, MetricsRegistry,
};
use els_optimizer::{
    bound_query_tables, optimize_bound, CachedPlan, EstimatorPreset, EstimatorStrategy,
    OptimizedQuery, OptimizerOptions, PlanCache,
};
use els_sql::{bind, canonical_sql, parse};
use els_storage::datagen::TableSpec;
use els_storage::Table;

/// Unified error for the engine facade.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexing/parsing/binding failure.
    Sql(String),
    /// Catalog registration/lookup failure.
    Catalog(String),
    /// Optimization failure.
    Optimizer(String),
    /// Execution failure.
    Exec(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sql(m) => write!(f, "SQL error: {m}"),
            EngineError::Catalog(m) => write!(f, "catalog error: {m}"),
            EngineError::Optimizer(m) => write!(f, "optimizer error: {m}"),
            EngineError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<els_sql::SqlError> for EngineError {
    fn from(e: els_sql::SqlError) -> Self {
        EngineError::Sql(e.to_string())
    }
}

impl From<els_catalog::CatalogError> for EngineError {
    fn from(e: els_catalog::CatalogError) -> Self {
        EngineError::Catalog(e.to_string())
    }
}

impl From<els_optimizer::OptimizerError> for EngineError {
    fn from(e: els_optimizer::OptimizerError) -> Self {
        EngineError::Optimizer(e.to_string())
    }
}

impl From<els_exec::ExecError> for EngineError {
    fn from(e: els_exec::ExecError) -> Self {
        EngineError::Exec(e.to_string())
    }
}

/// Result alias for the engine.
pub type EngineResult<T> = Result<T, EngineError>;

/// The outcome of one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result rows (a one-cell table for `COUNT(*)`).
    pub rows: Table,
    /// Result row count (the count itself for `COUNT(*)`).
    pub count: u64,
    /// Execution metrics.
    pub metrics: ExecMetrics,
    /// The join order the optimizer chose.
    pub join_order: Vec<String>,
    /// The intermediate sizes the optimizer believed in.
    pub estimated_sizes: Vec<f64>,
    /// True when the plan came from the [`Engine`]'s plan cache (always
    /// false for [`Database`], which optimizes every query).
    pub cache_hit: bool,
}

/// An embedded single-user database over in-memory tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    optimizer_options: OptimizerOptions,
    collect_options: CollectOptions,
    buffer_pages: Option<usize>,
    exec_mode: ExecMode,
}

impl Database {
    /// An empty database using Algorithm ELS and exact statistics without
    /// histograms.
    pub fn new() -> Database {
        Database::default()
    }

    /// Switch the estimation algorithm (SM / SSS / ELS, per the paper's
    /// experiment presets).
    pub fn set_estimator(&mut self, preset: EstimatorPreset) {
        self.optimizer_options = OptimizerOptions::preset(preset);
    }

    /// Replace the full optimizer configuration.
    pub fn set_optimizer_options(&mut self, options: OptimizerOptions) {
        self.optimizer_options = options;
    }

    /// Set the runtime-feedback policy. Under `Observe` or `Apply`,
    /// [`Database::explain_analyze`] harvests each operator's
    /// `(estimated, actual)` pair into the catalog's
    /// [`els_catalog::FeedbackStore`]; under `Apply` the optimizer also
    /// multiplies published corrections into its selectivities.
    pub fn set_feedback(&mut self, mode: FeedbackMode) {
        self.optimizer_options.feedback = mode;
    }

    /// Plan with a different estimator strategy (ELS pipeline, the
    /// UES-style upper bound, or the no-estimates baseline).
    pub fn set_strategy(&mut self, strategy: EstimatorStrategy) {
        self.optimizer_options.strategy = strategy;
    }

    /// Configure how statistics are collected for *subsequently* registered
    /// tables (e.g. [`CollectOptions::full`] for histograms + MCVs).
    pub fn set_collect_options(&mut self, options: CollectOptions) {
        self.collect_options = options;
    }

    /// Execute queries through an LRU buffer pool of `pages` pages (`None`
    /// = unbuffered; every logical base-table page read is physical).
    pub fn set_buffer_pages(&mut self, pages: Option<usize>) {
        self.buffer_pages = pages;
    }

    /// Choose the execution mode (default: vectorized, one worker). Both
    /// modes produce identical rows and counters; `RowAtATime` is the
    /// reference oracle, `Vectorized { workers: n > 1 }` adds parallel
    /// hash joins (radix-partitioned for big build sides, work-stealing
    /// morsel probes otherwise).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// Register an existing table.
    pub fn register(&mut self, table: Table) -> EngineResult<()> {
        self.catalog.register(table, &self.collect_options)?;
        Ok(())
    }

    /// Generate and register a table from a spec with a seed.
    pub fn generate(&mut self, spec: TableSpec, seed: u64) -> EngineResult<()> {
        self.register(spec.generate(seed))
    }

    /// The underlying catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parse, bind, and optimize without executing.
    pub fn prepare(&self, sql: &str) -> EngineResult<OptimizedQuery> {
        let bound = bind(&parse(sql)?, &self.catalog)?;
        Ok(optimize_bound(&bound, &self.catalog, &self.optimizer_options)?)
    }

    /// Run a query end to end.
    pub fn execute(&self, sql: &str) -> EngineResult<QueryResult> {
        let bound = bind(&parse(sql)?, &self.catalog)?;
        let optimized = optimize_bound(&bound, &self.catalog, &self.optimizer_options)?;
        let tables = bound_query_tables(&bound, &self.catalog)?;
        let out = match self.buffer_pages {
            None => execute_plan_with(&optimized.plan, &tables, self.exec_mode)?,
            Some(pages) => {
                execute_plan_buffered_with(&optimized.plan, &tables, pages, self.exec_mode)?
            }
        };
        let join_order =
            optimized.join_order.iter().map(|&t| bound.binding_names[t].clone()).collect();
        Ok(QueryResult {
            rows: out.rows,
            count: out.count,
            metrics: out.metrics,
            join_order,
            estimated_sizes: optimized.estimated_sizes,
            cache_hit: false,
        })
    }

    /// EXPLAIN ANALYZE: run the query and report, per operator, the
    /// optimizer's estimated cardinality next to the measured one — the
    /// estimation-quality view the paper's experiment table is built from.
    /// The report also lands in the process-wide
    /// [`els_exec::MetricsRegistry`]. Render with `Display` for the
    /// human-readable tree.
    pub fn explain_analyze(&self, sql: &str) -> EngineResult<ExplainAnalyzeReport> {
        let bound = bind(&parse(sql)?, &self.catalog)?;
        let optimized = optimize_bound(&bound, &self.catalog, &self.optimizer_options)?;
        let tables = bound_query_tables(&bound, &self.catalog)?;
        let report = analyze_query(
            sql,
            &optimized,
            &bound.binding_names,
            &tables,
            self.buffer_pages,
            self.exec_mode,
            false,
        )?;
        // A single-user database optimizes every query, so publications
        // need no plan invalidation — the next optimize sees them.
        harvest_query(
            &self.catalog,
            self.optimizer_options.feedback,
            &optimized,
            &bound.table_names,
            &report.operators,
        );
        Ok(report)
    }

    /// An EXPLAIN-style report: the rewritten predicates, equivalence
    /// classes, effective statistics, estimated sizes, and the plan tree.
    pub fn explain(&self, sql: &str) -> EngineResult<String> {
        let bound = bind(&parse(sql)?, &self.catalog)?;
        let optimized = optimize_bound(&bound, &self.catalog, &self.optimizer_options)?;
        Ok(explain_report(sql, &bound.binding_names, &optimized))
    }
}

/// A concurrent, cache-fronted query engine.
///
/// Where [`Database`] is single-user (`&mut self`, one caller),
/// `Engine` is built to be shared: every query method takes `&self`, so an
/// `Engine` behind an `Arc` (or borrowed into [`std::thread::scope`])
/// serves many threads at once.
///
/// * **Reads never lock.** A query takes a [`CatalogSnapshot`] — an
///   `Arc`'d immutable catalog plus the epoch it was published at — and
///   binds, optimizes and executes entirely against it.
/// * **Writes publish.** [`Engine::register`] copies the catalog, applies
///   the change, swaps the `Arc` and bumps the epoch.
/// * **Plans are cached.** Optimized plans are keyed by the query's
///   canonical fingerprint ([`els_sql::fingerprint`]), the optimizer
///   configuration's [`OptimizerOptions::config_fingerprint`] and the
///   snapshot epoch; a hit skips binding, estimation and join
///   enumeration. Any catalog change bumps the epoch, so stale plans can
///   never be served — and a plan optimized under one configuration can
///   never be replayed under another.
///
/// Optimizer configuration is fixed at construction (it is part of what a
/// cached plan means); build a second engine for a second configuration.
/// The one exception is the estimator strategy, which
/// [`Engine::set_strategy`] switches at runtime: because the strategy is
/// part of the cache key, plans optimized under the previous strategy
/// stay cached but can never be served to the new one.
///
/// ```
/// use els::engine::Engine;
/// use els::storage::datagen::{TableSpec, ColumnSpec, Distribution};
///
/// let engine = Engine::new();
/// engine.generate(
///     TableSpec::new("t", 1000)
///         .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
///     42,
/// ).unwrap();
/// let cold = engine.execute("SELECT COUNT(*) FROM t WHERE k < 100").unwrap();
/// let warm = engine.execute("SELECT COUNT(*) FROM t WHERE k < 100").unwrap();
/// assert_eq!((cold.count, warm.count), (100, 100));
/// assert!(!cold.cache_hit && warm.cache_hit);
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    catalog: SharedCatalog,
    /// Behind an `Arc` so several engines (e.g. one per tenant in a
    /// multi-tenant server) can share one cache budget; per-tenant
    /// isolation comes from the lane salt in the cache key, not from
    /// separate caches. See [`Engine::shared_cache`].
    cache: Arc<PlanCache>,
    options: OptimizerOptions,
    /// The runtime-switchable estimator strategy (encoded for atomic
    /// storage; see [`Engine::set_strategy`]). Overrides
    /// `options.strategy`.
    strategy: std::sync::atomic::AtomicU8,
    collect_options: CollectOptions,
    buffer_pages: Option<usize>,
    exec_mode: ExecMode,
}

/// Strategy <-> atomic encoding for [`Engine::set_strategy`].
fn strategy_code(strategy: EstimatorStrategy) -> u8 {
    match strategy {
        EstimatorStrategy::Els => 0,
        EstimatorStrategy::UpperBound => 1,
        EstimatorStrategy::NoEstimates => 2,
    }
}

fn strategy_from_code(code: u8) -> EstimatorStrategy {
    match code {
        1 => EstimatorStrategy::UpperBound,
        2 => EstimatorStrategy::NoEstimates,
        _ => EstimatorStrategy::Els,
    }
}

impl Engine {
    /// An empty engine with default options and a default-capacity plan
    /// cache.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An empty engine with the given optimizer configuration.
    pub fn with_options(options: OptimizerOptions) -> Engine {
        let strategy = std::sync::atomic::AtomicU8::new(strategy_code(options.strategy));
        Engine { options, strategy, ..Engine::default() }
    }

    /// Set the plan-cache capacity (0 disables caching — every query
    /// re-optimizes, the pre-cache behaviour). Consumes `self`: capacity is
    /// fixed before the engine is shared.
    #[must_use]
    pub fn cache_capacity(self, capacity: usize) -> Engine {
        Engine { cache: Arc::new(PlanCache::new(capacity)), ..self }
    }

    /// Share an existing plan cache with this engine. Multi-tenant
    /// deployments hang one cache behind every tenant's engine so the
    /// capacity budget and eviction pressure are global, while the lane
    /// salt ([`Engine::plan_lane`]) keeps entries strictly per-tenant.
    #[must_use]
    pub fn shared_cache(self, cache: Arc<PlanCache>) -> Engine {
        Engine { cache, ..self }
    }

    /// Put this engine's cached plans in a distinct lane (default 0).
    /// The lane is folded into [`OptimizerOptions::config_fingerprint`]
    /// and hence into every cache key this engine writes or reads, so two
    /// engines on the same shared cache with different lanes can never
    /// observe each other's plans — even for byte-identical SQL.
    #[must_use]
    pub fn plan_lane(self, lane: u64) -> Engine {
        let mut options = self.options;
        options.lane = lane;
        Engine { options, ..self }
    }

    /// Set statistics collection for subsequently registered tables.
    #[must_use]
    pub fn collect_options(self, collect_options: CollectOptions) -> Engine {
        Engine { collect_options, ..self }
    }

    /// Route execution through an LRU buffer pool of `pages` pages.
    #[must_use]
    pub fn buffer_pages(self, pages: Option<usize>) -> Engine {
        Engine { buffer_pages: pages, ..self }
    }

    /// Set the execution mode directly (see [`ExecMode`]).
    #[must_use]
    pub fn exec_mode(self, mode: ExecMode) -> Engine {
        Engine { exec_mode: mode, ..self }
    }

    /// Set the runtime-feedback policy (default
    /// [`FeedbackMode::Off`]). Under `Observe` or `Apply`, every
    /// [`Engine::execute`] and [`Engine::explain_analyze`] harvests
    /// per-operator `(estimated, actual)` pairs into the shared catalog's
    /// [`els_catalog::FeedbackStore`]; under `Apply` the optimizer also
    /// consults published corrections, and a correction drifting past the
    /// store's publication threshold bumps the catalog epoch so stale
    /// cached plans re-optimize. Consumes `self`: like the estimator, the
    /// policy is part of what a cached plan means.
    #[must_use]
    pub fn feedback(self, mode: FeedbackMode) -> Engine {
        let mut options = self.options;
        options.feedback = mode;
        Engine { options, ..self }
    }

    /// Run vectorized with `workers` join threads AND tell the cost model
    /// about it: the optimizer's hash-join probe term is divided by the
    /// worker count (`CostParams::probe_parallelism`), and its radix
    /// repartition surcharge engages exactly when the executor's
    /// partition decision (`els_exec::radix_partitions`) would, so plan
    /// choice and runtime stay consistent. Consumes `self`: like the
    /// optimizer configuration, the mode is part of what a cached plan
    /// means.
    #[must_use]
    pub fn exec_workers(self, workers: usize) -> Engine {
        let workers = workers.max(1);
        let mut options = self.options;
        options.cost.probe_parallelism = workers as f64;
        Engine { exec_mode: ExecMode::Vectorized { workers }, options, ..self }
    }

    /// Register an existing table (publishes a new catalog snapshot and
    /// bumps the epoch, invalidating cached plans).
    pub fn register(&self, table: Table) -> EngineResult<()> {
        self.catalog.register(table, &self.collect_options)?;
        Ok(())
    }

    /// Generate and register a table from a spec with a seed.
    pub fn generate(&self, spec: TableSpec, seed: u64) -> EngineResult<()> {
        self.register(spec.generate(seed))
    }

    /// The current catalog snapshot (immutable; cheap to take and hold).
    pub fn snapshot(&self) -> CatalogSnapshot {
        self.catalog.snapshot()
    }

    /// The current catalog epoch.
    pub fn epoch(&self) -> u64 {
        self.catalog.epoch()
    }

    /// Force cached-plan invalidation without changing catalog contents.
    pub fn invalidate_plans(&self) {
        self.catalog.invalidate();
    }

    /// The optimizer configuration this engine serves with, as
    /// constructed. The live estimator strategy may differ — see
    /// [`Engine::current_strategy`].
    pub fn options(&self) -> &OptimizerOptions {
        &self.options
    }

    /// Switch the estimator strategy at runtime, through a shared
    /// reference. Safe under concurrency because the strategy is part of
    /// the plan-cache key: plans optimized under the previous strategy
    /// stay cached but can never be served to the new one.
    pub fn set_strategy(&self, strategy: EstimatorStrategy) {
        self.strategy.store(strategy_code(strategy), std::sync::atomic::Ordering::SeqCst);
    }

    /// The estimator strategy queries are currently planned with.
    pub fn current_strategy(&self) -> EstimatorStrategy {
        strategy_from_code(self.strategy.load(std::sync::atomic::Ordering::SeqCst))
    }

    /// The options actually used for planning: the constructed options
    /// with the live strategy folded in.
    fn effective_options(&self) -> OptimizerOptions {
        self.options.clone().with_strategy(self.current_strategy())
    }

    /// The plan cache (for inspection; counters live on it).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Point-in-time plan-cache counters (hits, misses, evictions,
    /// invalidations).
    pub fn cache_stats(&self) -> EngineCountersSnapshot {
        self.cache.stats()
    }

    /// Parse → fingerprint → cache lookup, optimizing on a miss. Returns
    /// the ready-to-execute plan, the snapshot it is valid against, and
    /// whether it was a hit.
    fn prepare_at(&self, sql: &str) -> EngineResult<(Arc<CachedPlan>, CatalogSnapshot, bool)> {
        let ast = parse(sql)?;
        let options = self.effective_options();
        // The optimizer configuration is part of the key: the same SQL
        // planned under a different estimator, rule, or feedback mode is a
        // different plan, and serving one to the other would replay the
        // wrong estimates.
        let fingerprint = format!("{}#{:016x}", canonical_sql(&ast), options.config_fingerprint());
        // Epoch and contents come from the same snapshot, so a plan stamped
        // with this epoch is exactly a plan over these statistics.
        let snapshot = self.catalog.snapshot();
        if let Some(plan) = self.cache.get(&fingerprint, snapshot.epoch()) {
            return Ok((plan, snapshot, true));
        }
        let bound = bind(&ast, snapshot.catalog())?;
        let optimized = optimize_bound(&bound, snapshot.catalog(), &options)?;
        let plan = Arc::new(CachedPlan {
            optimized,
            table_names: bound.table_names,
            binding_names: bound.binding_names,
        });
        self.cache.insert(fingerprint, snapshot.epoch(), Arc::clone(&plan));
        Ok((plan, snapshot, false))
    }

    /// Parse, bind and optimize (through the cache) without executing.
    pub fn prepare(&self, sql: &str) -> EngineResult<Arc<CachedPlan>> {
        Ok(self.prepare_at(sql)?.0)
    }

    /// Run a query end to end. Repeated queries reuse the cached plan;
    /// execution always runs against the snapshot the plan was optimized
    /// for.
    pub fn execute(&self, sql: &str) -> EngineResult<QueryResult> {
        let (plan, snapshot, cache_hit) = self.prepare_at(sql)?;
        self.run_plan(&plan, &snapshot, cache_hit)
    }

    /// Run a query *only if* its plan is already cached: parse, fingerprint
    /// and probe the cache, but never optimize. `Ok(None)` signals a miss.
    /// This is the degraded service mode an overloaded server sheds to —
    /// cache hits skip binding, estimation and join enumeration, so serving
    /// only them bounds per-query planning work while under pressure.
    pub fn execute_if_cached(&self, sql: &str) -> EngineResult<Option<QueryResult>> {
        let ast = parse(sql)?;
        let options = self.effective_options();
        let fingerprint = format!("{}#{:016x}", canonical_sql(&ast), options.config_fingerprint());
        let snapshot = self.catalog.snapshot();
        match self.cache.get(&fingerprint, snapshot.epoch()) {
            Some(plan) => self.run_plan(&plan, &snapshot, true).map(Some),
            None => Ok(None),
        }
    }

    /// Execute a prepared plan against the snapshot it was optimized for
    /// (the shared tail of [`Engine::execute`] and
    /// [`Engine::execute_if_cached`]).
    fn run_plan(
        &self,
        plan: &Arc<CachedPlan>,
        snapshot: &CatalogSnapshot,
        cache_hit: bool,
    ) -> EngineResult<QueryResult> {
        let tables = plan
            .table_names
            .iter()
            .map(|name| snapshot.table_data(name))
            .collect::<Result<Vec<_>, _>>()?;
        let out = if self.options.feedback.observes() {
            // Feedback needs per-operator actuals: run the observed
            // executor variant (same results, plus observation streams)
            // and fold the residuals into the shared feedback store.
            let (out, obs) = match self.buffer_pages {
                None => execute_plan_observed_with(&plan.optimized.plan, &tables, self.exec_mode)?,
                Some(pages) => execute_plan_buffered_observed_with(
                    &plan.optimized.plan,
                    &tables,
                    pages,
                    self.exec_mode,
                )?,
            };
            let operators = build_operator_reports(
                &plan.optimized.plan.root,
                plan.optimized.estimator(),
                &plan.binding_names,
                &obs,
            )
            .map_err(|e| EngineError::Optimizer(e.to_string()))?;
            let published = harvest_query(
                snapshot,
                self.options.feedback,
                &plan.optimized,
                &plan.table_names,
                &operators,
            );
            // Publications only matter to plans that would consult them:
            // invalidate under Apply, never churn the cache under Observe.
            if published > 0 && self.options.feedback.applies() {
                self.catalog.invalidate();
            }
            out
        } else {
            match self.buffer_pages {
                None => execute_plan_with(&plan.optimized.plan, &tables, self.exec_mode)?,
                Some(pages) => execute_plan_buffered_with(
                    &plan.optimized.plan,
                    &tables,
                    pages,
                    self.exec_mode,
                )?,
            }
        };
        let join_order =
            plan.optimized.join_order.iter().map(|&t| plan.binding_names[t].clone()).collect();
        Ok(QueryResult {
            rows: out.rows,
            count: out.count,
            metrics: out.metrics,
            join_order,
            estimated_sizes: plan.optimized.estimated_sizes.clone(),
            cache_hit,
        })
    }

    /// An EXPLAIN-style report (see [`Database::explain`]); goes through
    /// the plan cache like [`Engine::execute`].
    pub fn explain(&self, sql: &str) -> EngineResult<String> {
        let (plan, _, _) = self.prepare_at(sql)?;
        Ok(explain_report(sql, &plan.binding_names, &plan.optimized))
    }

    /// EXPLAIN ANALYZE through the plan cache: execute with observation
    /// collection and return the structured estimated-vs-actual report
    /// (see [`Database::explain_analyze`]). `cache_hit` in the report tells
    /// whether the estimates came from a previously cached plan.
    pub fn explain_analyze(&self, sql: &str) -> EngineResult<ExplainAnalyzeReport> {
        let (plan, snapshot, cache_hit) = self.prepare_at(sql)?;
        let tables = plan
            .table_names
            .iter()
            .map(|name| snapshot.table_data(name))
            .collect::<Result<Vec<_>, _>>()?;
        let report = analyze_query(
            sql,
            &plan.optimized,
            &plan.binding_names,
            &tables,
            self.buffer_pages,
            self.exec_mode,
            cache_hit,
        )?;
        let published = harvest_query(
            &snapshot,
            self.options.feedback,
            &plan.optimized,
            &plan.table_names,
            &report.operators,
        );
        if published > 0 && self.options.feedback.applies() {
            self.catalog.invalidate();
        }
        Ok(report)
    }
}

/// Harvest an executed query's operator reports into the catalog's
/// feedback store (no-op when `feedback` is `Off`) and mirror the activity
/// into [`MetricsRegistry::global`]. Returns the number of publications
/// granted; the caller coalesces any positive count into a single plan
/// invalidation, so one execution never bumps the epoch more than once.
fn harvest_query(
    catalog: &Catalog,
    feedback: FeedbackMode,
    optimized: &OptimizedQuery,
    table_names: &[String],
    operators: &[OperatorReport],
) -> u64 {
    if !feedback.observes() {
        return 0;
    }
    // Residuals are defined against the ELS pipeline's estimates; operator
    // reports built from an alternative estimator would poison the store.
    if optimized.strategy() != EstimatorStrategy::Els {
        return 0;
    }
    let names: Vec<&str> = table_names.iter().map(String::as_str).collect();
    let Ok(corrections) = catalog.corrections(&names) else {
        return 0;
    };
    // `corrected` must describe the *plan's* estimates, not the mode: an
    // Apply-mode plan optimized before anything was published carries raw
    // estimates, and composing a mid-query publication back out of them
    // would inflate every subsequent residual of the same execution.
    let corrected = optimized.corrections_applied > 0;
    let (observed, published) =
        harvest_feedback(operators, &optimized.els, &corrections, corrected);
    MetricsRegistry::global().record_feedback(observed, optimized.corrections_applied, published);
    published
}

/// Execute with observations and assemble the [`ExplainAnalyzeReport`]
/// (shared by [`Database::explain_analyze`] and
/// [`Engine::explain_analyze`]). Records the report into
/// [`MetricsRegistry::global`] under the estimator's rule name.
fn analyze_query(
    sql: &str,
    optimized: &OptimizedQuery,
    binding_names: &[String],
    tables: &[Arc<Table>],
    buffer_pages: Option<usize>,
    mode: ExecMode,
    cache_hit: bool,
) -> EngineResult<ExplainAnalyzeReport> {
    let (out, obs) = match buffer_pages {
        None => execute_plan_observed_with(&optimized.plan, tables, mode)?,
        Some(pages) => execute_plan_buffered_observed_with(&optimized.plan, tables, pages, mode)?,
    };
    let operators =
        build_operator_reports(&optimized.plan.root, optimized.estimator(), binding_names, &obs)
            .map_err(|e| EngineError::Optimizer(e.to_string()))?;
    // Alternative estimators have no selectivity rule; key their accuracy
    // samples in the registry by estimator name instead.
    let rule = match optimized.strategy() {
        EstimatorStrategy::Els => optimized.els.options().rule.short_name().to_owned(),
        _ => optimized.estimator().name().to_owned(),
    };
    let report = ExplainAnalyzeReport {
        sql: sql.to_owned(),
        rule,
        mode,
        cache_hit,
        corrections_applied: optimized.corrections_applied,
        result_rows: out.count,
        operators,
        metrics: out.metrics,
    };
    report.record(MetricsRegistry::global());
    Ok(report)
}

/// Render the EXPLAIN report for an optimized query (shared by
/// [`Database::explain`] and [`Engine::explain`]).
fn explain_report(sql: &str, binding_names: &[String], optimized: &OptimizedQuery) -> String {
    let els = &optimized.els;
    let mut out = String::new();
    out.push_str(&format!("query: {sql}\n"));
    out.push_str("predicates (after Step 1-2):\n");
    for p in els.predicates() {
        out.push_str(&format!("  {p}\n"));
    }
    if !els.classes().is_empty() {
        out.push_str("equivalence classes:\n");
        for (id, members) in els.classes().iter() {
            let names: Vec<String> = members.iter().map(|m| m.to_string()).collect();
            out.push_str(&format!("  {id}: {{{}}}\n", names.join(", ")));
        }
    }
    out.push_str("effective statistics:\n");
    for (t, table) in els.effective_stats().tables.iter().enumerate() {
        out.push_str(&format!(
            "  {} (R{t}): ||R|| {} -> {:.1}\n",
            binding_names[t], table.original_cardinality, table.cardinality
        ));
    }
    let order: Vec<&str> =
        optimized.join_order.iter().map(|&t| binding_names[t].as_str()).collect();
    out.push_str(&format!(
        "join order: {} | estimated sizes: {:?} | cost: {:.1}\n",
        order.join(" ⋈ "),
        optimized.estimated_sizes,
        optimized.estimated_cost
    ));
    out.push_str("plan:\n");
    out.push_str(&optimized.plan.root.explain());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::{ColumnSpec, Distribution};

    fn db() -> Database {
        let mut db = Database::new();
        db.generate(
            TableSpec::new("a", 1000)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
            1,
        )
        .unwrap();
        db.generate(
            TableSpec::new("b", 500)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
            2,
        )
        .unwrap();
        db
    }

    #[test]
    fn count_star_round_trip() {
        let db = db();
        let r = db.execute("SELECT COUNT(*) FROM a WHERE k < 100").unwrap();
        assert_eq!(r.count, 100);
        assert_eq!(r.join_order, vec!["a"]);
    }

    #[test]
    fn join_round_trip_with_estimates() {
        let db = db();
        let r = db.execute("SELECT COUNT(*) FROM a, b WHERE a.k = b.k").unwrap();
        assert_eq!(r.count, 500);
        assert_eq!(r.estimated_sizes, vec![500.0]);
        assert_eq!(r.join_order.len(), 2);
    }

    #[test]
    fn inequality_join_round_trip() {
        // a.k in 0..1000, b.k in 0..500: |{(x,y) : x < y}| = Σ_{y<500} y.
        let expected: u64 = (0..500u64).sum();
        let mut db = db();
        let r = db.execute("SELECT COUNT(*) FROM a, b WHERE a.k < b.k").unwrap();
        assert_eq!(r.count, expected);
        assert_eq!(r.join_order.len(), 2);
        db.set_exec_mode(ExecMode::RowAtATime);
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM a, b WHERE a.k < b.k").unwrap().count,
            expected
        );
        // BETWEEN on a column pair binds to two inequality edges.
        let band = db.execute("SELECT COUNT(*) FROM a, b WHERE a.k BETWEEN b.k AND b.k").unwrap();
        assert_eq!(band.count, 500, "degenerate band is the equi-join");
    }

    #[test]
    fn explain_analyze_reports_range_join_q_error() {
        let db = db();
        let expected: u64 = (0..500u64).sum();
        let rep = db.explain_analyze("SELECT COUNT(*) FROM a, b WHERE a.k < b.k").unwrap();
        assert_eq!(rep.result_rows, expected);
        let joins: Vec<_> = rep.join_operators().collect();
        assert_eq!(joins.len(), 1);
        assert!(joins[0].label.contains("RANGE"), "band join expected: {}", joins[0].label);
        assert_eq!(joins[0].actual, expected);
        let q = joins[0].q_error();
        assert!(q.is_finite() && q >= 1.0, "qerr {q}");
        assert!(rep.metrics.range_join_rows >= expected, "{}", rep.metrics);
        let text = rep.to_string();
        assert!(text.contains("Join<RANGE>"), "{text}");
        assert!(text.contains("qerr="), "{text}");
    }

    #[test]
    fn estimator_is_switchable() {
        let mut db = db();
        db.set_estimator(EstimatorPreset::Sm);
        let r = db.execute("SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.k < 10").unwrap();
        assert_eq!(r.count, 10);
    }

    #[test]
    fn explain_contains_the_key_sections() {
        let db = db();
        let text = db.explain("SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.k < 10").unwrap();
        assert!(text.contains("equivalence classes"));
        assert!(text.contains("join order"));
        assert!(text.contains("Scan"));
        assert!(text.contains("effective statistics"));
    }

    #[test]
    fn errors_are_classified() {
        let db = db();
        assert!(matches!(db.execute("NOT SQL"), Err(EngineError::Sql(_))));
        assert!(matches!(db.execute("SELECT COUNT(*) FROM nope"), Err(EngineError::Sql(_))));
        let mut db2 = db.clone();
        let dup = TableSpec::new("a", 1)
            .column(ColumnSpec::new("k", Distribution::ConstInt { value: 0 }))
            .generate(9);
        assert!(matches!(db2.register(dup), Err(EngineError::Catalog(_))));
    }

    #[test]
    fn projection_queries_return_rows() {
        let db = db();
        let r = db.execute("SELECT a.k FROM a, b WHERE a.k = b.k AND a.k < 3").unwrap();
        assert_eq!(r.count, 3);
        assert_eq!(r.rows.num_columns(), 1);
    }

    fn engine() -> Engine {
        let engine = Engine::new();
        engine
            .generate(
                TableSpec::new("a", 1000)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                1,
            )
            .unwrap();
        engine
            .generate(
                TableSpec::new("b", 500)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                2,
            )
            .unwrap();
        engine
    }

    #[test]
    fn engine_matches_database_and_reports_hits() {
        let engine = engine();
        let sql = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k";
        let cold = engine.execute(sql).unwrap();
        assert_eq!(cold.count, 500);
        assert!(!cold.cache_hit);
        // Same semantics, different formatting → same cache entry.
        let warm = engine.execute("select count(*)  from a, b where b.k = a.k").unwrap();
        assert_eq!(warm.count, 500);
        assert!(warm.cache_hit);
        assert_eq!(warm.join_order, cold.join_order);
        assert_eq!(warm.estimated_sizes, cold.estimated_sizes);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn flipped_inequalities_share_a_cache_entry() {
        // `a.k < b.k` and `b.k > a.k` canonicalize to the same fingerprint.
        let engine = engine();
        let cold = engine.execute("SELECT COUNT(*) FROM a, b WHERE a.k < b.k").unwrap();
        assert!(!cold.cache_hit);
        let warm = engine.execute("SELECT COUNT(*) FROM a, b WHERE b.k > a.k").unwrap();
        assert!(warm.cache_hit, "flipped comparison must reuse the cached plan");
        assert_eq!(warm.count, cold.count);
    }

    #[test]
    fn range_feedback_learns_band_join_corrections() {
        // A band join over Zipf-skewed columns: mass piles up on small
        // values, so the uniform fraction misprices `r.k < s.k`. The
        // feedback loop must harvest a range-keyed residual and improve
        // (or at least not regress) the repeated estimate.
        let engine = Engine::new().feedback(FeedbackMode::Apply);
        for (name, seed) in [("r", 21), ("s", 22)] {
            engine
                .generate(
                    TableSpec::new(name, 800).column(ColumnSpec::new(
                        "k",
                        Distribution::ZipfInt { n: 400, theta: 1.0, start: 0 },
                    )),
                    seed,
                )
                .unwrap();
        }
        let sql = "SELECT COUNT(*) FROM r, s WHERE r.k < s.k";
        let q = |est: f64, act: f64| (est.max(1.0) / act).max(act / est.max(1.0));
        let first = engine.execute(sql).unwrap();
        let actual = first.count as f64;
        assert!(actual > 0.0);
        let q1 = q(*first.estimated_sizes.last().unwrap(), actual);
        let second = engine.execute(sql).unwrap();
        let q2 = q(*second.estimated_sizes.last().unwrap(), actual);
        assert!(q2 <= q1 + 1e-9, "range feedback regressed: {q1} -> {q2}");
        let counters = engine.snapshot().feedback().counters();
        assert!(counters.learned >= 1, "band-join residual must be harvested");
    }

    #[test]
    fn strategy_switch_never_replays_the_other_estimators_plan() {
        let engine = engine();
        let sql = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k";
        let els = engine.execute(sql).unwrap();
        assert!(!els.cache_hit);
        assert_eq!(els.estimated_sizes, vec![500.0]);

        // Same SQL under a different strategy: a different cache entry
        // carrying the no-estimates baseline's numbers, not a replay of
        // the ELS plan.
        engine.set_strategy(EstimatorStrategy::NoEstimates);
        assert_eq!(engine.current_strategy(), EstimatorStrategy::NoEstimates);
        let ne = engine.execute(sql).unwrap();
        assert!(!ne.cache_hit);
        assert_eq!(ne.estimated_sizes, vec![1000.0]);
        assert_eq!(ne.count, els.count);

        engine.set_strategy(EstimatorStrategy::UpperBound);
        let ub = engine.execute(sql).unwrap();
        assert!(!ub.cache_hit);
        assert_eq!(ub.count, els.count);

        // Switching back serves the original entry — still cached, and
        // never overwritten by the other strategies.
        engine.set_strategy(EstimatorStrategy::Els);
        let back = engine.execute(sql).unwrap();
        assert!(back.cache_hit);
        assert_eq!(back.estimated_sizes, els.estimated_sizes);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 3));
    }

    #[test]
    fn engine_register_bumps_epoch_and_invalidates() {
        let engine = engine();
        let sql = "SELECT COUNT(*) FROM a WHERE k < 100";
        assert!(!engine.execute(sql).unwrap().cache_hit);
        assert!(engine.execute(sql).unwrap().cache_hit);
        let epoch = engine.epoch();
        engine
            .generate(
                TableSpec::new("c", 10)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                3,
            )
            .unwrap();
        assert_eq!(engine.epoch(), epoch + 1);
        let after = engine.execute(sql).unwrap();
        assert!(!after.cache_hit, "stale-epoch plan must not be served");
        assert_eq!(after.count, 100);
        assert_eq!(engine.cache_stats().invalidations, 1);
    }

    #[test]
    fn engine_explain_matches_database_explain() {
        let engine = engine();
        let db = db();
        let sql = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.k < 10";
        assert_eq!(engine.explain(sql).unwrap(), db.explain(sql).unwrap());
    }

    #[test]
    fn engine_zero_capacity_never_hits() {
        let engine = Engine::new().cache_capacity(0);
        engine
            .generate(
                TableSpec::new("t", 100)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                1,
            )
            .unwrap();
        for _ in 0..3 {
            assert!(!engine.execute("SELECT COUNT(*) FROM t").unwrap().cache_hit);
        }
        assert_eq!(engine.cache_stats().hits, 0);
    }

    #[test]
    fn engine_errors_are_classified_like_database() {
        let engine = engine();
        assert!(matches!(engine.execute("NOT SQL"), Err(EngineError::Sql(_))));
        assert!(matches!(engine.execute("SELECT COUNT(*) FROM nope"), Err(EngineError::Sql(_))));
    }

    #[test]
    fn engine_exec_workers_sets_mode_and_cost_hook() {
        let engine = engine().exec_workers(4);
        assert_eq!(engine.exec_mode, ExecMode::Vectorized { workers: 4 });
        assert_eq!(engine.options.cost.probe_parallelism, 4.0);
        // Parallel execution returns the same answers as the default engine.
        let sql = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k";
        assert_eq!(engine.execute(sql).unwrap().count, 500);
        // Degenerate worker counts clamp to serial rather than breaking costs.
        let clamped = Engine::new().exec_workers(0);
        assert_eq!(clamped.exec_mode, ExecMode::Vectorized { workers: 1 });
        assert_eq!(clamped.options.cost.probe_parallelism, 1.0);
    }

    fn zipf_engine(mode: FeedbackMode) -> Engine {
        // Without histograms the uniform model badly misestimates `k < 10`
        // over a Zipf-skewed column — the feedback loop's bread and butter.
        let engine = Engine::new().feedback(mode);
        engine
            .generate(
                TableSpec::new("z", 2000).column(ColumnSpec::new(
                    "k",
                    Distribution::ZipfInt { n: 1000, theta: 1.0, start: 0 },
                )),
                7,
            )
            .unwrap();
        engine
    }

    #[test]
    fn feedback_apply_corrects_repeated_queries() {
        let engine = zipf_engine(FeedbackMode::Apply);
        let sql = "SELECT COUNT(*) FROM z WHERE k < 10";
        let first = engine.explain_analyze(sql).unwrap();
        assert!(
            first.query_q_error() > 2.0,
            "workload not skewed enough: {}",
            first.query_q_error()
        );
        // Harvesting the first run publishes a correction (the residual is
        // way past the 2x drift threshold), which invalidates the cached
        // plan; the re-optimized estimate is built from the observed
        // cardinality and lands near-exact.
        let second = engine.explain_analyze(sql).unwrap();
        assert!(!second.cache_hit, "publication must invalidate the cached plan");
        assert!(second.corrections_applied >= 1);
        assert!(
            second.query_q_error() <= first.query_q_error(),
            "feedback regressed: {} -> {}",
            first.query_q_error(),
            second.query_q_error()
        );
        assert!(
            second.query_q_error() < 1.5,
            "correction should be near-exact: {}",
            second.query_q_error()
        );
        // The corrected estimate is stable: no further drift, no churn —
        // the third run reuses the corrected plan.
        let third = engine.explain_analyze(sql).unwrap();
        assert!(third.cache_hit, "stable corrections must not churn the cache");
        let counters = engine.snapshot().feedback().counters();
        assert!(counters.learned >= 3);
        assert_eq!(counters.epoch_bumps, 1, "exactly one publication expected");
    }

    #[test]
    fn feedback_observe_learns_without_changing_estimates() {
        let engine = zipf_engine(FeedbackMode::Observe);
        let sql = "SELECT COUNT(*) FROM z WHERE k < 10";
        let first = engine.execute(sql).unwrap();
        let second = engine.execute(sql).unwrap();
        // Observe never consults the store and never invalidates plans.
        assert!(second.cache_hit);
        assert_eq!(first.estimated_sizes, second.estimated_sizes);
        assert_eq!(engine.cache_stats().invalidations, 0);
        let counters = engine.snapshot().feedback().counters();
        assert!(counters.learned >= 2, "observe mode must still harvest");
        assert_eq!(counters.applied, 0, "observe mode must never apply");
    }

    #[test]
    fn feedback_join_corrections_improve_skewed_joins() {
        // Two Zipf columns joined: frequent values pair up, so the actual
        // join size far exceeds the containment estimate ||R||·||S||/d.
        let engine = Engine::new().feedback(FeedbackMode::Apply);
        for (name, seed) in [("r", 11), ("s", 12)] {
            engine
                .generate(
                    TableSpec::new(name, 1000).column(ColumnSpec::new(
                        "k",
                        Distribution::ZipfInt { n: 100, theta: 1.0, start: 0 },
                    )),
                    seed,
                )
                .unwrap();
        }
        let sql = "SELECT COUNT(*) FROM r, s WHERE r.k = s.k";
        let q = |est: f64, act: f64| (est.max(1.0) / act).max(act / est.max(1.0));
        let first = engine.execute(sql).unwrap();
        let actual = first.count as f64;
        let q1 = q(*first.estimated_sizes.last().unwrap(), actual);
        assert!(q1 > 2.0, "join workload not skewed enough: {q1}");
        let second = engine.execute(sql).unwrap();
        let q2 = q(*second.estimated_sizes.last().unwrap(), actual);
        assert!(q2 <= q1, "join feedback regressed: {q1} -> {q2}");
        assert!(q2 < 1.5, "join correction should be near-exact: {q2}");
    }

    #[test]
    fn database_feedback_loop_matches_engine_semantics() {
        let mut db = Database::new();
        db.set_feedback(FeedbackMode::Apply);
        db.generate(
            TableSpec::new("z", 2000).column(ColumnSpec::new(
                "k",
                Distribution::ZipfInt { n: 1000, theta: 1.0, start: 0 },
            )),
            7,
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM z WHERE k < 10";
        let first = db.explain_analyze(sql).unwrap();
        let second = db.explain_analyze(sql).unwrap();
        assert!(second.query_q_error() <= first.query_q_error());
        assert!(second.query_q_error() < 1.5);
        assert!(second.to_string().contains("corrected="), "{second}");
    }

    #[test]
    fn execute_if_cached_probes_without_optimizing() {
        let engine = engine();
        let sql = "SELECT COUNT(*) FROM a WHERE k < 100";
        // Cold cache: a probe is a clean miss, not an optimization.
        assert!(engine.execute_if_cached(sql).unwrap().is_none());
        assert_eq!(engine.cache_stats().misses, 1);
        let cold = engine.execute(sql).unwrap();
        assert!(!cold.cache_hit);
        let hit = engine.execute_if_cached(sql).unwrap().expect("plan is cached now");
        assert!(hit.cache_hit);
        assert_eq!(hit.count, cold.count);
        // Parse errors still surface as typed errors, not as misses.
        assert!(matches!(engine.execute_if_cached("NOT SQL"), Err(EngineError::Sql(_))));
    }

    #[test]
    fn plan_lanes_isolate_tenants_on_a_shared_cache() {
        use els_optimizer::PlanCache;
        let shared = Arc::new(PlanCache::new(64));
        let mk = |lane: u64| {
            let e = Engine::new().shared_cache(Arc::clone(&shared)).plan_lane(lane);
            e.generate(
                TableSpec::new("t", 1000)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                lane + 1,
            )
            .unwrap();
            e
        };
        let (a, b) = (mk(1), mk(2));
        let sql = "SELECT COUNT(*) FROM t WHERE k < 50";
        assert!(!a.execute(sql).unwrap().cache_hit);
        // Tenant B issues byte-identical SQL on the same shared cache and
        // still misses: the lane salt keeps A's plan out of reach.
        assert!(!b.execute(sql).unwrap().cache_hit, "lane isolation violated");
        assert!(b.execute_if_cached(sql).unwrap().expect("B's own plan").cache_hit);
        assert!(a.execute(sql).unwrap().cache_hit, "A's entry must survive B's traffic");
    }

    #[test]
    fn database_exec_mode_is_switchable() {
        let mut db = db();
        let sql = "SELECT a.k FROM a, b WHERE a.k = b.k AND a.k < 5";
        let vectorized = db.execute(sql).unwrap();
        db.set_exec_mode(ExecMode::RowAtATime);
        let row = db.execute(sql).unwrap();
        assert_eq!(vectorized.count, row.count);
        assert_eq!(vectorized.rows.num_rows(), row.rows.num_rows());
    }
}
