//! **B4** — executor cost: the three join methods at a fixed workload
//! (10k ⋈ 10k foreign-key join), plus the filtered-scan path. Grounds the
//! wall-time column of experiment T1.

use criterion::{criterion_group, criterion_main, Criterion};
use els_core::predicate::CmpOp;
use els_core::ColumnRef;
use els_exec::filter::CompiledFilter;
use els_exec::join::{hash_join, nested_loop_rescan_join, sort_merge_join};
use els_exec::{Chunk, ExecMetrics};
use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};
use els_storage::Value;
use std::hint::black_box;

fn make_chunk(table_id: usize, rows: usize, modulus: u64, seed: u64) -> Chunk {
    let t = TableSpec::new("t", rows)
        .column(ColumnSpec::new("k", Distribution::CycleInt { modulus, start: 0 }))
        .generate(seed);
    Chunk::from_base_table(table_id, t)
}

fn bench_joins(c: &mut Criterion) {
    let left = make_chunk(0, 10_000, 10_000, 1);
    let right = make_chunk(1, 10_000, 10_000, 2);
    let keys = vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))];

    c.bench_function("join/sort_merge_10k", |b| {
        b.iter(|| {
            let mut m = ExecMetrics::default();
            sort_merge_join(black_box(&left), black_box(&right), &keys, &mut m).unwrap()
        })
    });
    c.bench_function("join/hash_10k", |b| {
        b.iter(|| {
            let mut m = ExecMetrics::default();
            hash_join(black_box(&left), black_box(&right), &keys, &mut m).unwrap()
        })
    });
    // Nested loops is quadratic; use a small outer so the bench stays sane.
    let small_outer = make_chunk(0, 100, 100, 3);
    c.bench_function("join/nl_rescan_100x10k", |b| {
        b.iter(|| {
            let mut m = ExecMetrics::default();
            let mut io = els_exec::PageIo::unbuffered();
            nested_loop_rescan_join(
                black_box(&small_outer),
                1,
                &right.data,
                &[],
                &keys,
                &mut m,
                &mut io,
            )
            .unwrap()
        })
    });
}

fn bench_filtered_scan(c: &mut Criterion) {
    let chunk = make_chunk(0, 100_000, 100_000, 4);
    let filters = vec![CompiledFilter::Cmp {
        column: ColumnRef::new(0, 0),
        op: CmpOp::Lt,
        value: Value::Int(100),
    }];
    c.bench_function("scan/filtered_100k", |b| {
        b.iter(|| {
            let mut m = ExecMetrics::default();
            els_exec::filter::apply_filters(black_box(&chunk), &filters, &mut m).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_joins, bench_filtered_scan
}
criterion_main!(benches);
