//! # els-optimizer
//!
//! A System-R style query optimizer with pluggable cardinality estimation —
//! the stand-in for the (modified) Starburst optimizer of the paper's
//! Section 8 experiment.
//!
//! * [`profile`] — per-table physical profiles (rows, pages, tuple width)
//!   feeding the cost model; built from the catalog or by hand.
//! * [`cost`] — a page-based cost model for filtered scans, nested-loops
//!   (base-inner rescan), sort-merge, and hash joins.
//! * [`rewrite`] — predicate transitive closure as a standalone query
//!   rewrite (the paper implemented PTC as a Starburst rewrite rule [11] so
//!   it could be toggled; the same toggle exists here).
//! * [`enumerate`] — dynamic-programming enumeration of left-deep join
//!   trees, choosing join order *and* join method per step from estimated
//!   cardinalities.
//! * [`plan_cache`] — a concurrent LRU plan cache keyed by canonical query
//!   fingerprint + catalog epoch, so repeated queries skip enumeration
//!   entirely (counters in [`els_exec::EngineCounters`]).
//! * [`optimizer`] — the front door: configure an estimation algorithm
//!   (the paper's **SM**, **SSS**, or **ELS**), optimize a bound query, and
//!   get back an executable [`els_exec::QueryPlan`] plus the estimated
//!   intermediate result sizes the optimizer believed in.
//!
//! The coupling under study: the estimator's intermediate-size estimates
//! enter the cost of every candidate join; an estimator that collapses to
//! ~0 (Rule M after transitive closure) makes nested loops over a giant
//! unfiltered inner look free, and the chosen plan pays for it at runtime.

// Clippy-level twin of the els-lint panic-freedom and metrics-only-io
// passes (scripts/check.sh runs clippy with `-D warnings`, so these warn
// levels are bans on non-test library code).
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)
)]

pub mod cost;
pub mod enumerate;
pub mod error;
pub mod heuristic;
pub mod optimizer;
pub mod plan_cache;
pub mod profile;
pub mod rewrite;

pub use cost::CostParams;
pub use enumerate::{EnumerationResult, TreeShape};
pub use error::{OptimizerError, OptimizerResult};
pub use heuristic::{cost_order, greedy_order, iterative_improvement};
pub use optimizer::{
    bound_query_tables, optimize, optimize_bound, optimize_full, optimize_with_oracle,
    EstimatorPreset, EstimatorStrategy, OptimizedQuery, OptimizerOptions,
};
pub use plan_cache::{CachedPlan, PlanCache};
pub use profile::TableProfile;
pub use rewrite::apply_predicate_transitive_closure;
