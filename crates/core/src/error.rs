//! Error type for the estimation core.

use std::fmt;

use crate::ids::{ColumnRef, TableId};

/// Errors raised while preparing or running Algorithm ELS.
#[derive(Debug, Clone, PartialEq)]
pub enum ElsError {
    /// A predicate references a table not present in the statistics.
    UnknownTable(TableId),
    /// A predicate references a column index beyond its table's statistics.
    UnknownColumn(ColumnRef),
    /// A join predicate's two sides live in the same table (it should have
    /// been a local column-equality predicate) or a local column equality
    /// spans two tables.
    MalformedPredicate(String),
    /// A statistic was non-finite or out of range (e.g. negative cardinality
    /// or zero distinct count on a non-empty table).
    InvalidStatistics(String),
    /// A table id passed to the incremental estimator was already part of the
    /// join state, or is out of range.
    InvalidJoinStep {
        /// The offending table.
        table: TableId,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A quantity fed to the distinct-value models (urn, proportional) was
    /// NaN, infinite or negative. The math is meaningless there, and the old
    /// behaviour — silently returning `0.0` — let a degenerate input
    /// propagate as a confident zero estimate with no signal.
    DegenerateStats(String),
}

impl fmt::Display for ElsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElsError::UnknownTable(t) => write!(f, "unknown table R{t}"),
            ElsError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            ElsError::MalformedPredicate(msg) => write!(f, "malformed predicate: {msg}"),
            ElsError::InvalidStatistics(msg) => write!(f, "invalid statistics: {msg}"),
            ElsError::InvalidJoinStep { table, reason } => {
                write!(f, "invalid join step with R{table}: {reason}")
            }
            ElsError::DegenerateStats(msg) => write!(f, "degenerate statistics: {msg}"),
        }
    }
}

impl std::error::Error for ElsError {}

/// Result alias for this crate.
pub type ElsResult<T> = Result<T, ElsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offenders() {
        assert!(ElsError::UnknownTable(3).to_string().contains("R3"));
        assert!(ElsError::UnknownColumn(ColumnRef::new(1, 2)).to_string().contains("R1.c2"));
        assert!(ElsError::InvalidJoinStep { table: 0, reason: "already joined" }
            .to_string()
            .contains("already joined"));
        assert!(ElsError::DegenerateStats("urn count is NaN".into())
            .to_string()
            .contains("urn count is NaN"));
    }
}
