//! Abstract syntax tree for the SPJ subset.

use els_core::predicate::CmpOp;
use els_storage::Value;
use std::fmt;

/// A possibly qualified column reference as written in the query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRefAst {
    /// Table name or alias, when qualified.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl fmt::Display for ColRefAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// One `FROM`-list entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRefAst {
    /// Catalog table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRefAst {
    /// The name this table is referred to by in predicates.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// What the query projects.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `COUNT(*)` — the paper's experimental query shape.
    CountStar,
    /// `*` — all columns of all tables.
    Star,
    /// An explicit column list.
    Columns(Vec<ColRefAst>),
    /// Columns followed by `COUNT(*)` — requires a matching `GROUP BY`.
    ColumnsAndCount(Vec<ColRefAst>),
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A column reference.
    Column(ColRefAst),
    /// A literal constant.
    Literal(Value),
}

/// One conjunct of the `WHERE` clause. (`BETWEEN a AND b` is desugared by
/// the parser into two [`PredicateAst::Cmp`] conjuncts.)
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateAst {
    /// `left op right`.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// `operand IS [NOT] NULL`.
    IsNull {
        /// The tested operand (must bind to a column).
        operand: Operand,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The projection.
    pub projection: Projection,
    /// `FROM` list, in order.
    pub from: Vec<TableRefAst>,
    /// `WHERE` conjuncts, in order (empty when absent).
    pub predicates: Vec<PredicateAst>,
    /// `GROUP BY` columns (empty when absent).
    pub group_by: Vec<ColRefAst>,
    /// `ORDER BY` items (empty when absent).
    pub order_by: Vec<OrderItemAst>,
    /// `LIMIT` row count, when present.
    pub limit: Option<u64>,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderItemAst {
    /// The sort column.
    pub column: ColRefAst,
    /// True for `DESC`.
    pub descending: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRefAst { name: "orders".into(), alias: Some("o".into()) };
        assert_eq!(t.binding_name(), "o");
        let t = TableRefAst { name: "orders".into(), alias: None };
        assert_eq!(t.binding_name(), "orders");
    }

    #[test]
    fn colref_display() {
        let c = ColRefAst { table: Some("R".into()), column: "x".into() };
        assert_eq!(c.to_string(), "R.x");
        let c = ColRefAst { table: None, column: "x".into() };
        assert_eq!(c.to_string(), "x");
    }
}
