//! Error type for storage operations.

use std::fmt;

/// Errors raised by table and column operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A value of the wrong [`crate::DataType`] was supplied to a column.
    TypeMismatch {
        /// The type the column stores.
        expected: crate::DataType,
        /// The type that was supplied.
        actual: crate::DataType,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of rows actually present.
        len: usize,
    },
    /// A column index was out of bounds.
    ColumnOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of columns actually present.
        len: usize,
    },
    /// A column name did not resolve.
    UnknownColumn(String),
    /// A row was appended whose arity differs from the table schema.
    ArityMismatch {
        /// Number of columns in the table.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// CSV import/export failure (malformed input, I/O error).
    Csv(String),
    /// Columns of unequal length were assembled into one table.
    RaggedColumns {
        /// Length of the first column.
        first: usize,
        /// Length of the offending column.
        offending: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: column stores {expected}, got {actual}")
            }
            StorageError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for length {len}")
            }
            StorageError::ColumnOutOfBounds { index, len } => {
                write!(f, "column index {index} out of bounds for {len} columns")
            }
            StorageError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            StorageError::Csv(msg) => write!(f, "CSV error: {msg}"),
            StorageError::ArityMismatch { expected, actual } => {
                write!(f, "row arity mismatch: table has {expected} columns, row has {actual}")
            }
            StorageError::RaggedColumns { first, offending } => {
                write!(f, "ragged columns: first column has {first} rows, another has {offending}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used throughout the crate.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::TypeMismatch { expected: DataType::Int, actual: DataType::Str };
        assert!(e.to_string().contains("type mismatch"));
        let e = StorageError::RowOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
        let e = StorageError::UnknownColumn("zap".into());
        assert!(e.to_string().contains("zap"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StorageError::UnknownColumn("x".into()));
    }
}
