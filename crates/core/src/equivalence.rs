//! J-equivalence classes of join columns (paper, Section 2).
//!
//! Initially each column is its own equivalence class; every column-equality
//! predicate (join or local) merges the classes of its two sides. The
//! resulting partition drives transitive closure (Step 2), the single-table
//! treatment of Section 6, and the grouping of eligible join predicates in
//! Step 6.
//!
//! The implementation is a standard union-find with path compression and
//! union by size, keyed by [`ColumnRef`].

use std::collections::HashMap;

use crate::ids::{ClassId, ColumnRef};
use crate::predicate::Predicate;

/// Union-find over column references.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    index: HashMap<ColumnRef, usize>,
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// Create an empty structure.
    pub fn new() -> Self {
        UnionFind::default()
    }

    /// Ensure `c` is tracked, returning its slot.
    pub fn insert(&mut self, c: ColumnRef) -> usize {
        if let Some(&i) = self.index.get(&c) {
            return i;
        }
        let i = self.parent.len();
        self.index.insert(c, i);
        self.parent.push(i);
        self.size.push(1);
        i
    }

    fn find_slot(&mut self, mut i: usize) -> usize {
        loop {
            let parent = self.parent.get(i).copied().unwrap_or(i);
            if parent == i {
                return i;
            }
            // Path halving: point i at its grandparent before stepping.
            let grand = self.parent.get(parent).copied().unwrap_or(parent);
            if let Some(slot) = self.parent.get_mut(i) {
                *slot = grand;
            }
            i = grand;
        }
    }

    /// Merge the classes of `a` and `b`.
    pub fn union(&mut self, a: ColumnRef, b: ColumnRef) {
        let (ia, ib) = (self.insert(a), self.insert(b));
        let (ra, rb) = (self.find_slot(ia), self.find_slot(ib));
        if ra == rb {
            return;
        }
        // els-lint: allow(numeric-discipline, "provably safe: ra/rb are find_slot roots of slots insert() created, and every created slot pushed a size entry; 1 is the exact size of a fresh singleton")
        let size_a = self.size.get(ra).copied().unwrap_or(1);
        // els-lint: allow(numeric-discipline, "provably safe: same invariant as size_a — union-find slots and their size entries are created together")
        let size_b = self.size.get(rb).copied().unwrap_or(1);
        let (big, small) = if size_a >= size_b { (ra, rb) } else { (rb, ra) };
        if let Some(p) = self.parent.get_mut(small) {
            *p = big;
        }
        if let Some(s) = self.size.get_mut(big) {
            *s += size_a.min(size_b);
        }
    }

    /// True when `a` and `b` are known and in the same class.
    pub fn connected(&mut self, a: ColumnRef, b: ColumnRef) -> bool {
        match (self.index.get(&a).copied(), self.index.get(&b).copied()) {
            (Some(ia), Some(ib)) => self.find_slot(ia) == self.find_slot(ib),
            _ => false,
        }
    }

    /// All tracked columns.
    pub fn columns(&self) -> impl Iterator<Item = ColumnRef> + '_ {
        self.index.keys().copied()
    }
}

/// The finished partition of columns into j-equivalence classes.
///
/// Only classes with at least two members are materialized — singleton
/// classes never influence estimation (a column alone in its class has no
/// implied predicates and no grouped selectivities).
#[derive(Debug, Clone)]
pub struct EquivalenceClasses {
    /// Members of each class, sorted; indexed by [`ClassId`].
    classes: Vec<Vec<ColumnRef>>,
    /// Reverse map: column → class.
    by_column: HashMap<ColumnRef, ClassId>,
}

impl EquivalenceClasses {
    /// Build classes from the column-equality predicates in `predicates`
    /// (non-equality predicates are ignored).
    ///
    /// # Examples
    ///
    /// ```
    /// use els_core::{equivalence::EquivalenceClasses, ColumnRef, Predicate};
    /// let preds = vec![
    ///     Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
    ///     Predicate::col_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)),
    /// ];
    /// let classes = EquivalenceClasses::from_predicates(&preds);
    /// assert_eq!(classes.len(), 1);
    /// assert!(classes.equivalent(ColumnRef::new(0, 0), ColumnRef::new(2, 0)));
    /// ```
    pub fn from_predicates(predicates: &[Predicate]) -> Self {
        let mut uf = UnionFind::new();
        for p in predicates {
            if let Predicate::LocalColEq { left, right } | Predicate::JoinEq { left, right } = p {
                uf.union(*left, *right);
            }
        }
        Self::from_union_find(uf)
    }

    /// Collapse a union-find into dense, sorted classes.
    pub fn from_union_find(mut uf: UnionFind) -> Self {
        let cols: Vec<ColumnRef> = uf.columns().collect();
        let mut groups: HashMap<usize, Vec<ColumnRef>> = HashMap::new();
        for c in cols {
            let Some(slot) = uf.index.get(&c).copied() else { continue };
            let root = uf.find_slot(slot);
            groups.entry(root).or_default().push(c);
        }
        let mut classes: Vec<Vec<ColumnRef>> = groups
            .into_values()
            .filter(|g| g.len() >= 2)
            .map(|mut g| {
                g.sort();
                g
            })
            .collect();
        // Deterministic class numbering: order classes by their smallest
        // member so results do not depend on hash iteration order.
        classes.sort_by_key(|g| g.first().copied());
        let mut by_column = HashMap::new();
        for (i, class) in classes.iter().enumerate() {
            for &c in class {
                by_column.insert(c, ClassId(i));
            }
        }
        EquivalenceClasses { classes, by_column }
    }

    /// Number of (non-singleton) classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when there are no non-singleton classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class containing `column`, if any.
    pub fn class_of(&self, column: ColumnRef) -> Option<ClassId> {
        self.by_column.get(&column).copied()
    }

    /// Members of a class, sorted ascending (empty for an unknown class
    /// id — an out-of-range lookup degrades, it does not panic).
    pub fn members(&self, class: ClassId) -> &[ColumnRef] {
        self.classes.get(class.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate `(ClassId, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &[ColumnRef])> + '_ {
        self.classes.iter().enumerate().map(|(i, m)| (ClassId(i), m.as_slice()))
    }

    /// True when the two columns are j-equivalent.
    pub fn equivalent(&self, a: ColumnRef, b: ColumnRef) -> bool {
        match (self.class_of(a), self.class_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Members of `class` that belong to `table`.
    pub fn members_in_table(&self, class: ClassId, table: usize) -> Vec<ColumnRef> {
        self.members(class).iter().copied().filter(|c| c.table == table).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new();
        uf.union(c(0, 0), c(1, 0));
        uf.union(c(1, 0), c(2, 0));
        assert!(uf.connected(c(0, 0), c(2, 0)));
        assert!(!uf.connected(c(0, 0), c(3, 0)));
    }

    #[test]
    fn unknown_columns_are_not_connected() {
        let mut uf = UnionFind::new();
        uf.insert(c(0, 0));
        assert!(!uf.connected(c(0, 0), c(9, 9)));
    }

    #[test]
    fn classes_from_example_1a() {
        // J1: R0.x = R1.y, J2: R1.y = R2.z  =>  {x, y, z} one class.
        let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0)), Predicate::col_eq(c(1, 0), c(2, 0))];
        let ec = EquivalenceClasses::from_predicates(&preds);
        assert_eq!(ec.len(), 1);
        assert_eq!(ec.members(ClassId(0)), &[c(0, 0), c(1, 0), c(2, 0)]);
        assert!(ec.equivalent(c(0, 0), c(2, 0)));
    }

    #[test]
    fn separate_classes_stay_separate() {
        let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0)), Predicate::col_eq(c(0, 1), c(2, 0))];
        let ec = EquivalenceClasses::from_predicates(&preds);
        assert_eq!(ec.len(), 2);
        assert!(!ec.equivalent(c(1, 0), c(2, 0)));
        // Deterministic numbering: class of R0.c0 comes first.
        assert_eq!(ec.class_of(c(0, 0)), Some(ClassId(0)));
        assert_eq!(ec.class_of(c(0, 1)), Some(ClassId(1)));
    }

    #[test]
    fn local_column_equality_merges_within_table() {
        // R1.y = R1.w plus R0.x = R1.y puts all three together.
        let preds = vec![Predicate::col_eq(c(1, 0), c(1, 1)), Predicate::col_eq(c(0, 0), c(1, 0))];
        let ec = EquivalenceClasses::from_predicates(&preds);
        assert_eq!(ec.len(), 1);
        assert_eq!(ec.members_in_table(ClassId(0), 1), vec![c(1, 0), c(1, 1)]);
    }

    #[test]
    fn local_cmp_does_not_create_classes() {
        let preds = vec![Predicate::local_cmp(c(0, 0), crate::CmpOp::Eq, 5i64)];
        let ec = EquivalenceClasses::from_predicates(&preds);
        assert!(ec.is_empty());
        assert_eq!(ec.class_of(c(0, 0)), None);
    }

    #[test]
    fn singleton_classes_are_dropped() {
        let mut uf = UnionFind::new();
        uf.insert(c(0, 0));
        uf.union(c(1, 0), c(2, 0));
        let ec = EquivalenceClasses::from_union_find(uf);
        assert_eq!(ec.len(), 1);
        assert_eq!(ec.class_of(c(0, 0)), None);
    }

    #[test]
    fn iter_visits_all_classes() {
        let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0)), Predicate::col_eq(c(2, 0), c(3, 0))];
        let ec = EquivalenceClasses::from_predicates(&preds);
        let sizes: Vec<usize> = ec.iter().map(|(_, m)| m.len()).collect();
        assert_eq!(sizes, vec![2, 2]);
    }
}
