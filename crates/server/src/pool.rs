//! The acceptor + fixed worker pool: the workspace's second parallelism
//! seam.
//!
//! All `thread::spawn` calls in `els-server` live in this file, mirroring
//! the discipline `els-exec::scheduler` established for the first seam
//! (and which the `parallelism-seam` lint enforces): threads are named,
//! joined on shutdown, and follow one written panic policy. The policy
//! here differs from the batch scheduler's on purpose — a batch join
//! re-raises a worker panic because a truncated result would be silent
//! data loss, but a *server* worker that panicked while serving one
//! connection must isolate the blast radius: the panic is caught, the
//! connection dies, the worker keeps serving other clients. The panicking
//! query is visible as a dropped connection plus a `queries_err` bump,
//! never as a dead pool.
//!
//! Shutdown protocol (no hangs by construction):
//! 1. set the shutdown flag (workers observe it at their poll cadence),
//! 2. close the admission queue (idle workers wake and exit; queued
//!    connections drain first),
//! 3. self-connect once to unblock the acceptor's `accept()`,
//! 4. join every thread.

use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use els_exec::ServerCountersSnapshot;

use crate::admission::Popped;
use crate::error::{ServerError, ServerResult};
use crate::server::{reject_overloaded, serve_connection, ServerConfig, Shared};
use crate::tenant::Tenants;

/// A running front door: the listener's address plus the join handles a
/// shutdown needs. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads serving (the process
/// owns them); tests and benches should shut down explicitly.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use port 0 at bind time to get an ephemeral
    /// port and read it back here).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Point-in-time counters for this server instance (the same numbers
    /// are mirrored into the process-wide `MetricsRegistry` JSON).
    pub fn counters(&self) -> ServerCountersSnapshot {
        self.shared.snapshot()
    }

    /// Current admission-queue depth (the shed-mode load signal).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Stop accepting, drain, and join every thread. Idempotent in
    /// effect; bounded by the poll cadence plus in-flight query time.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        // Wake the acceptor out of its blocking accept(). The connection
        // itself is discarded on arrival because the flag is already set.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Bind `addr` and start serving `tenants` with `config`. Returns once
/// the listener is live; all serving happens on the spawned threads.
pub fn serve(addr: &str, tenants: Tenants, config: ServerConfig) -> ServerResult<ServerHandle> {
    let listener = TcpListener::bind(addr).map_err(|e| ServerError::Io(e.to_string()))?;
    let local = listener.local_addr().map_err(|e| ServerError::Io(e.to_string()))?;
    let shared = Arc::new(Shared::new(tenants, config));

    let mut workers = Vec::with_capacity(shared.config.workers);
    for i in 0..shared.config.workers {
        let shared_w = Arc::clone(&shared);
        let builder = std::thread::Builder::new().name(format!("els-server-worker-{i}"));
        let handle = builder
            .spawn(move || worker_loop(&shared_w))
            .map_err(|e| ServerError::Io(format!("spawning worker {i}: {e}")))?;
        workers.push(handle);
    }

    let shared_a = Arc::clone(&shared);
    let builder = std::thread::Builder::new().name("els-server-acceptor".to_string());
    let acceptor = builder
        .spawn(move || acceptor_loop(&listener, &shared_a))
        .map_err(|e| ServerError::Io(format!("spawning acceptor: {e}")))?;

    Ok(ServerHandle { shared, addr: local, acceptor: Some(acceptor), workers })
}

/// Accept until shutdown; admission control happens here, before any
/// protocol byte is read.
fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down() {
            return; // the wake-up connect (or a late client); drop it
        }
        if let Err(stream) = shared.queue.try_push(stream) {
            reject_overloaded(stream, shared);
        }
    }
}

/// Pop admitted connections and serve each to completion. A panic inside
/// one connection is contained here (see the module doc's panic policy).
fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop(shared.config.poll_interval) {
            Popped::Item(stream) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(stream, shared)));
                if outcome.is_err() {
                    // The connection died with its panic; the pool did not.
                    shared.bump(|c| &c.queries_err);
                }
            }
            Popped::Empty => {
                if shared.shutting_down() {
                    return;
                }
            }
            Popped::Closed => return,
        }
    }
}
