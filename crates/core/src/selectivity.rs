//! Local-predicate selectivities (Algorithm ELS, Step 3).
//!
//! Each local predicate `R.x op c` is assigned a selectivity. Uniformity is
//! *not* assumed for local predicates when better information exists: a
//! [`SelectivityOracle`] (implemented over histograms by `els-catalog`) is
//! consulted first, and only on a miss does estimation fall back to the
//! discrete-uniform-domain model below.
//!
//! **Model.** A column with distinct count `d`, minimum `min` and maximum
//! `max` is modelled as `d` equally spaced values on `[min, max]` (the
//! uniformity assumption made concrete). Selectivities of range predicates
//! are then exact set counts over that grid — e.g. the paper's Section 8
//! filter `s < 100` over `d_s = 1000` sequential values `0..999` gets
//! selectivity exactly `0.1`. When no domain bounds are known the classic
//! System-R default of 1/3 per range predicate applies.
//!
//! **Multiple predicates on one column.** Following the paper's companion
//! report [16] (Section 4, step 3): if any *equality* predicate exists, the
//! most restrictive consistent equality wins (contradictory constants make
//! the column — and the whole conjunct — empty); otherwise the *tightest
//! pair of range bounds* is kept. `<>` predicates contribute their
//! complement selectivity multiplicatively and never constrain the bounds.

use els_storage::Value;

use crate::ids::ColumnRef;
use crate::predicate::CmpOp;
use crate::stats::ColumnStatistics;

/// Default selectivity of a range predicate when nothing is known about the
/// column's domain (System R's classic 1/3).
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Default selectivity of an equality predicate when even the distinct count
/// is unknown or zero (System R's classic 1/10).
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;

/// Hook for distribution statistics (histograms, most-common values).
///
/// `els-core` calls this before applying its uniform model; a `Some(s)`
/// answer is used as-is. Implementations must return selectivities of the
/// predicate against the **base** table (before any other predicate).
pub trait SelectivityOracle {
    /// Selectivity in `[0, 1]` of `column op value`, if this oracle knows.
    fn local_selectivity(&self, column: ColumnRef, op: CmpOp, value: &Value) -> Option<f64>;
}

/// An oracle that knows nothing; estimation always falls back to the
/// uniform-domain model.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOracle;

impl SelectivityOracle for NoOracle {
    fn local_selectivity(&self, _: ColumnRef, _: CmpOp, _: &Value) -> Option<f64> {
        None
    }
}

/// What the per-column resolution of Step 3 decided.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedShape {
    /// No constant predicate on this column.
    Unconstrained,
    /// A single consistent equality `x = value`; the column cardinality
    /// after the predicate is 1 (paper, Section 5).
    Equality(Value),
    /// A (possibly one-sided) range; column cardinality scales with the
    /// selectivity (`d' = d · S_L`, paper Section 5).
    Range,
    /// The predicates contradict each other — the table is empty.
    Contradiction,
}

/// Result of resolving all constant predicates on one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedColumn {
    /// Combined selectivity of the retained predicates.
    pub selectivity: f64,
    /// The retained shape, which drives the column-cardinality update.
    pub shape: ResolvedShape,
}

/// Selectivity of a single `column op value` under the uniform-domain model
/// (oracle misses handled by the caller). Always in `[0, 1]`.
/// # Examples
///
/// The Section 8 filter `s < 100` over 1000 sequential values:
///
/// ```
/// use els_core::{selectivity::model_selectivity, ColumnStatistics, CmpOp};
/// use els_storage::Value;
/// let stats = ColumnStatistics::with_domain(1000.0, 0.0, 999.0);
/// assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(100)), 0.1);
/// ```
pub fn model_selectivity(stats: &ColumnStatistics, op: CmpOp, value: &Value) -> f64 {
    let non_null = 1.0 - stats.null_fraction;
    let d = stats.distinct;
    let sel = match op {
        CmpOp::Eq => {
            if d <= 0.0 {
                DEFAULT_EQ_SELECTIVITY
            } else if out_of_domain(stats, value) {
                0.0
            } else {
                1.0 / d
            }
        }
        CmpOp::Ne => {
            if d <= 0.0 {
                1.0 - DEFAULT_EQ_SELECTIVITY
            } else if out_of_domain(stats, value) {
                1.0
            } else {
                1.0 - 1.0 / d
            }
        }
        CmpOp::Lt => fraction_satisfying(stats, value, RangeSide::Below { strict: true }),
        CmpOp::Le => fraction_satisfying(stats, value, RangeSide::Below { strict: false }),
        CmpOp::Gt => fraction_satisfying(stats, value, RangeSide::Above { strict: true }),
        CmpOp::Ge => fraction_satisfying(stats, value, RangeSide::Above { strict: false }),
    };
    (sel * non_null).clamp(0.0, 1.0)
}

enum RangeSide {
    Below { strict: bool },
    Above { strict: bool },
}

fn out_of_domain(stats: &ColumnStatistics, value: &Value) -> bool {
    match (value.as_f64(), stats.min, stats.max) {
        (Some(c), Some(lo), Some(hi)) => c < lo || c > hi,
        _ => false,
    }
}

/// Count how many of the `d` grid points satisfy the one-sided range, as a
/// fraction of `d`. Falls back to [`DEFAULT_RANGE_SELECTIVITY`] when the
/// domain or the constant is not numeric.
fn fraction_satisfying(stats: &ColumnStatistics, value: &Value, side: RangeSide) -> f64 {
    let (Some(c), Some(lo), Some(hi)) = (value.as_f64(), stats.min, stats.max) else {
        return DEFAULT_RANGE_SELECTIVITY;
    };
    // NaN constants sort above every float in the engine's total order, so
    // `x < NaN` is satisfied by everything and `x > NaN` by nothing.
    if c.is_nan() {
        return match side {
            RangeSide::Below { .. } => 1.0,
            RangeSide::Above { .. } => 0.0,
        };
    }
    let d = stats.distinct;
    if d <= 0.0 {
        return DEFAULT_RANGE_SELECTIVITY;
    }
    let below = grid_points_below(
        c,
        lo,
        hi,
        d,
        matches!(side, RangeSide::Below { strict: true } | RangeSide::Above { strict: false }),
    );
    match side {
        // `x < c` counts strictly-below points; `x <= c` counts
        // non-strictly-below (grid_points_below's flag selects which).
        RangeSide::Below { .. } => below / d,
        // `x > c` = 1 - (x <= c); `x >= c` = 1 - (x < c).
        RangeSide::Above { .. } => 1.0 - below / d,
    }
}

/// Number of the `d` equally spaced grid points on `[lo, hi]` that are
/// `< c` (when `strict`) or `<= c` (when `!strict`).
fn grid_points_below(c: f64, lo: f64, hi: f64, d: f64, strict: bool) -> f64 {
    if d <= 1.0 {
        // One value at lo (== hi).
        let sat = if strict { lo < c } else { lo <= c };
        return if sat { d.clamp(0.0, 1.0) } else { 0.0 };
    }
    if c < lo || (strict && c == lo) {
        return 0.0;
    }
    if c > hi || (!strict && c == hi) {
        return d;
    }
    let step = (hi - lo) / (d - 1.0);
    // Index positions i = 0..d at lo + i*step; count those below c.
    let t = (c - lo) / step;
    let count = if strict {
        // points with i*step < c - lo  <=>  i < t; count = ceil(t) (t not
        // integer) or t (integer).
        t.ceil()
    } else {
        t.floor() + 1.0
    };
    count.clamp(0.0, d)
}

/// Resolve all constant predicates on one column, per [16]: keep the most
/// restrictive equality if any exists, otherwise the tightest range-bound
/// pair; `<>` predicates multiply in their complement. The oracle is
/// consulted per retained predicate.
pub fn resolve_column_predicates(
    column: ColumnRef,
    stats: &ColumnStatistics,
    preds: &[(CmpOp, Value)],
    oracle: &dyn SelectivityOracle,
) -> ResolvedColumn {
    if preds.is_empty() {
        return ResolvedColumn { selectivity: 1.0, shape: ResolvedShape::Unconstrained };
    }

    let sel_of = |op: CmpOp, v: &Value| -> f64 {
        oracle
            .local_selectivity(column, op, v)
            .unwrap_or_else(|| model_selectivity(stats, op, v))
            .clamp(0.0, 1.0)
    };

    // Phase 1: equalities. All must agree on one constant; the constant must
    // satisfy every other predicate on the column.
    let equalities: Vec<&Value> =
        preds.iter().filter_map(|(op, v)| (*op == CmpOp::Eq).then_some(v)).collect();
    if let Some(first) = equalities.first() {
        if equalities.iter().any(|v| !v.sql_eq(first)) {
            return ResolvedColumn { selectivity: 0.0, shape: ResolvedShape::Contradiction };
        }
        for (op, v) in preds.iter().filter(|(op, _)| *op != CmpOp::Eq) {
            let sat = first.sql_cmp(v).map(|ord| op.eval(ord));
            if sat == Some(false) {
                return ResolvedColumn { selectivity: 0.0, shape: ResolvedShape::Contradiction };
            }
        }
        return ResolvedColumn {
            selectivity: sel_of(CmpOp::Eq, first),
            shape: ResolvedShape::Equality((*first).clone()),
        };
    }

    // Phase 2: tightest lower bound (largest constant; at a tie the strict
    // bound is tighter) and tightest upper bound (smallest constant; strict
    // tighter).
    let mut lower: Option<(CmpOp, &Value)> = None;
    let mut upper: Option<(CmpOp, &Value)> = None;
    let mut ne_count = 0usize;
    for (op, v) in preds {
        match op {
            CmpOp::Gt | CmpOp::Ge => {
                lower = Some(match lower {
                    None => (*op, v),
                    Some((cur_op, cur_v)) => match v.sql_cmp(cur_v) {
                        Some(std::cmp::Ordering::Greater) => (*op, v),
                        Some(std::cmp::Ordering::Equal) if *op == CmpOp::Gt => (*op, v),
                        _ => (cur_op, cur_v),
                    },
                });
            }
            CmpOp::Lt | CmpOp::Le => {
                upper = Some(match upper {
                    None => (*op, v),
                    Some((cur_op, cur_v)) => match v.sql_cmp(cur_v) {
                        Some(std::cmp::Ordering::Less) => (*op, v),
                        Some(std::cmp::Ordering::Equal) if *op == CmpOp::Lt => (*op, v),
                        _ => (cur_op, cur_v),
                    },
                });
            }
            CmpOp::Ne => ne_count += 1,
            CmpOp::Eq => unreachable!("equalities handled above"),
        }
    }

    // Detect an empty range (lo >= hi in the strict sense).
    if let (Some((lop, lv)), Some((uop, uv))) = (&lower, &upper) {
        if let Some(ord) = lv.sql_cmp(uv) {
            use std::cmp::Ordering::{Equal, Greater};
            let empty = match ord {
                Greater => true,
                Equal => *lop == CmpOp::Gt || *uop == CmpOp::Lt,
                _ => false,
            };
            if empty {
                return ResolvedColumn { selectivity: 0.0, shape: ResolvedShape::Contradiction };
            }
        }
    }

    let mut sel = match (&lower, &upper) {
        (None, None) => 1.0,
        (Some((op, v)), None) | (None, Some((op, v))) => sel_of(*op, v),
        (Some((lop, lv)), Some((uop, uv))) => {
            // The satisfied sets are a suffix and a prefix of the value grid,
            // so |A ∩ B| = max(0, |A| + |B| − d): exact under the model.
            (sel_of(*lop, lv) + sel_of(*uop, uv) - 1.0).max(0.0)
        }
    };
    // Each `<>` removes (at most) one value.
    for _ in 0..ne_count {
        let d = stats.distinct;
        sel *= if d > 1.0 { 1.0 - 1.0 / d } else { 1.0 };
    }

    let shape = if lower.is_none() && upper.is_none() && ne_count == 0 {
        ResolvedShape::Unconstrained
    } else {
        ResolvedShape::Range
    };
    ResolvedColumn { selectivity: sel.clamp(0.0, 1.0), shape }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> ColumnRef {
        ColumnRef::new(0, 0)
    }

    fn seq_stats(d: f64) -> ColumnStatistics {
        // Sequential integer column 0..d-1, the Section 8 shape.
        ColumnStatistics::with_domain(d, 0.0, d - 1.0)
    }

    #[test]
    fn section8_filter_selectivity_is_exactly_one_tenth() {
        let stats = seq_stats(1000.0);
        let s = model_selectivity(&stats, CmpOp::Lt, &Value::Int(100));
        assert_eq!(s, 0.1);
    }

    #[test]
    fn le_counts_the_boundary_value() {
        let stats = seq_stats(1000.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Le, &Value::Int(99)), 0.1);
        assert_eq!(model_selectivity(&stats, CmpOp::Le, &Value::Int(100)), 0.101);
    }

    #[test]
    fn gt_ge_are_complements_of_le_lt() {
        let stats = seq_stats(100.0);
        let c = Value::Int(30);
        let lt = model_selectivity(&stats, CmpOp::Lt, &c);
        let ge = model_selectivity(&stats, CmpOp::Ge, &c);
        assert!((lt + ge - 1.0).abs() < 1e-12);
        let le = model_selectivity(&stats, CmpOp::Le, &c);
        let gt = model_selectivity(&stats, CmpOp::Gt, &c);
        assert!((le + gt - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equality_is_one_over_d_inside_domain_and_zero_outside() {
        let stats = seq_stats(50.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Eq, &Value::Int(10)), 1.0 / 50.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Eq, &Value::Int(500)), 0.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Ne, &Value::Int(500)), 1.0);
    }

    #[test]
    fn range_without_domain_uses_default() {
        let stats = ColumnStatistics::with_distinct(100.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(5)), DEFAULT_RANGE_SELECTIVITY);
    }

    #[test]
    fn string_equality_uses_distinct_count() {
        let stats = ColumnStatistics::with_distinct(4.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Eq, &Value::from("a")), 0.25);
        assert_eq!(
            model_selectivity(&stats, CmpOp::Lt, &Value::from("a")),
            DEFAULT_RANGE_SELECTIVITY
        );
    }

    #[test]
    fn null_fraction_scales_everything() {
        let mut stats = seq_stats(10.0);
        stats.null_fraction = 0.5;
        assert_eq!(model_selectivity(&stats, CmpOp::Eq, &Value::Int(3)), 0.05);
    }

    #[test]
    fn out_of_range_boundaries_clamp() {
        let stats = seq_stats(10.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(-5)), 0.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(100)), 1.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Gt, &Value::Int(-5)), 1.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Gt, &Value::Int(100)), 0.0);
    }

    #[test]
    fn single_value_domain() {
        let stats = ColumnStatistics::with_domain(1.0, 7.0, 7.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Le, &Value::Int(7)), 1.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(7)), 0.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Ge, &Value::Int(7)), 1.0);
    }

    #[test]
    fn resolve_empty_is_unconstrained() {
        let r = resolve_column_predicates(col(), &seq_stats(10.0), &[], &NoOracle);
        assert_eq!(r.selectivity, 1.0);
        assert_eq!(r.shape, ResolvedShape::Unconstrained);
    }

    #[test]
    fn resolve_picks_equality_over_ranges() {
        // x = 5 AND x < 100: the equality wins, selectivity 1/d.
        let preds = vec![(CmpOp::Eq, Value::Int(5)), (CmpOp::Lt, Value::Int(100))];
        let r = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(r.selectivity, 1.0 / 1000.0);
        assert_eq!(r.shape, ResolvedShape::Equality(Value::Int(5)));
    }

    #[test]
    fn resolve_detects_equality_contradictions() {
        let preds = vec![(CmpOp::Eq, Value::Int(5)), (CmpOp::Eq, Value::Int(6))];
        let r = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(r.shape, ResolvedShape::Contradiction);
        assert_eq!(r.selectivity, 0.0);

        // x = 5 AND x > 100 is also empty.
        let preds = vec![(CmpOp::Eq, Value::Int(5)), (CmpOp::Gt, Value::Int(100))];
        let r = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(r.shape, ResolvedShape::Contradiction);
    }

    #[test]
    fn resolve_keeps_tightest_bounds() {
        // x > 10 AND x > 500 AND x < 900: keep (x > 500, x < 900).
        let preds = vec![
            (CmpOp::Gt, Value::Int(10)),
            (CmpOp::Gt, Value::Int(500)),
            (CmpOp::Lt, Value::Int(900)),
        ];
        let stats = seq_stats(1000.0);
        let r = resolve_column_predicates(col(), &stats, &preds, &NoOracle);
        // Values 501..=899: 399 of 1000.
        assert!((r.selectivity - 0.399).abs() < 1e-9, "got {}", r.selectivity);
        assert_eq!(r.shape, ResolvedShape::Range);
    }

    #[test]
    fn resolve_duplicate_range_predicate_is_idempotent() {
        // The paper's Step 1 example: (x > 500) AND (x > 500).
        let preds = vec![(CmpOp::Gt, Value::Int(500)), (CmpOp::Gt, Value::Int(500))];
        let once = resolve_column_predicates(col(), &seq_stats(1000.0), &preds[..1], &NoOracle);
        let twice = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(once.selectivity, twice.selectivity);
    }

    #[test]
    fn resolve_detects_empty_ranges() {
        let preds = vec![(CmpOp::Gt, Value::Int(900)), (CmpOp::Lt, Value::Int(100))];
        let r = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(r.shape, ResolvedShape::Contradiction);

        // x > 5 AND x < 5 and x >= 5 AND x < 5 are empty; x >= 5 AND x <= 5
        // is the single value 5.
        let r = resolve_column_predicates(
            col(),
            &seq_stats(1000.0),
            &[(CmpOp::Ge, Value::Int(5)), (CmpOp::Lt, Value::Int(5))],
            &NoOracle,
        );
        assert_eq!(r.shape, ResolvedShape::Contradiction);
        let r = resolve_column_predicates(
            col(),
            &seq_stats(1000.0),
            &[(CmpOp::Ge, Value::Int(5)), (CmpOp::Le, Value::Int(5))],
            &NoOracle,
        );
        assert!((r.selectivity - 1.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn resolve_strict_bound_is_tighter_at_equal_constant() {
        let stats = seq_stats(100.0);
        let strict = resolve_column_predicates(
            col(),
            &stats,
            &[(CmpOp::Gt, Value::Int(50)), (CmpOp::Ge, Value::Int(50))],
            &NoOracle,
        );
        let only_strict =
            resolve_column_predicates(col(), &stats, &[(CmpOp::Gt, Value::Int(50))], &NoOracle);
        assert_eq!(strict.selectivity, only_strict.selectivity);
    }

    #[test]
    fn resolve_ne_multiplies_complement() {
        let stats = seq_stats(10.0);
        let r = resolve_column_predicates(col(), &stats, &[(CmpOp::Ne, Value::Int(3))], &NoOracle);
        assert!((r.selectivity - 0.9).abs() < 1e-12);
        assert_eq!(r.shape, ResolvedShape::Range);
    }

    #[test]
    fn oracle_overrides_model() {
        struct Fixed;
        impl SelectivityOracle for Fixed {
            fn local_selectivity(&self, _: ColumnRef, _: CmpOp, _: &Value) -> Option<f64> {
                Some(0.25)
            }
        }
        let stats = seq_stats(1000.0);
        let r = resolve_column_predicates(col(), &stats, &[(CmpOp::Lt, Value::Int(100))], &Fixed);
        assert_eq!(r.selectivity, 0.25);
    }

    proptest::proptest! {
        #[test]
        fn model_selectivity_is_a_probability(
            d in 1.0f64..10_000.0,
            c in -100i64..1100,
            op_idx in 0usize..6,
        ) {
            let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
            let stats = ColumnStatistics::with_domain(d.floor(), 0.0, 999.0);
            let s = model_selectivity(&stats, ops[op_idx], &Value::Int(c));
            proptest::prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn tighter_bound_never_increases_selectivity(
            a in 0i64..1000,
            b in 0i64..1000,
        ) {
            let stats = ColumnStatistics::with_domain(1000.0, 0.0, 999.0);
            let wide = model_selectivity(&stats, CmpOp::Lt, &Value::Int(a.max(b)));
            let joint = resolve_column_predicates(
                ColumnRef::new(0, 0),
                &stats,
                &[(CmpOp::Lt, Value::Int(a)), (CmpOp::Lt, Value::Int(b))],
                &NoOracle,
            );
            proptest::prop_assert!(joint.selectivity <= wide + 1e-12);
        }
    }
}
