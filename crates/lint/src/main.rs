//! CLI for `els-lint`. Run from the workspace root:
//!
//! ```text
//! cargo run --release -q -p els-lint            # human report, ratchet check
//! cargo run --release -q -p els-lint -- --json  # structured report
//! ELS_LINT_BASELINE_UPDATE=1 cargo run -q -p els-lint -- --baseline-update
//! ```
//!
//! Exit codes: 0 clean, 1 new violations or malformed/unused suppressions,
//! 2 usage or I/O errors.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut update = false;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--baseline-update" => update = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);

    let outcome = match els_lint::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("els-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if update {
        // The ratchet only loosens deliberately: the flag alone is not
        // enough, the environment must opt in too (see scripts/check.sh).
        if env::var("ELS_LINT_BASELINE_UPDATE").as_deref() != Ok("1") {
            eprintln!(
                "els-lint: --baseline-update is gated: set ELS_LINT_BASELINE_UPDATE=1 \
                 to rewrite the ratchet baseline"
            );
            return ExitCode::from(2);
        }
        if !outcome.hard_errors.is_empty() {
            print!("{}", els_lint::report::human(&outcome));
            eprintln!("els-lint: fix suppression errors before updating the baseline");
            return ExitCode::from(1);
        }
        if els_lint::baseline_dirty(&root, &outcome) {
            eprintln!(
                "els-lint: {} changed on disk since this run loaded it; re-run \
                 --baseline-update against the current file",
                els_lint::BASELINE_FILE
            );
            return ExitCode::from(2);
        }
        if let Err(e) = els_lint::write_baseline(&root, &outcome.counts) {
            eprintln!("els-lint: {e}");
            return ExitCode::from(2);
        }
        println!(
            "els-lint: baseline rewritten with {} grandfathered violation(s)",
            outcome.counts.values().flat_map(|f| f.values()).sum::<u64>()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        print!("{}", els_lint::report::json(&outcome));
    } else {
        print!("{}", els_lint::report::human(&outcome));
    }
    if outcome.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("els-lint: {msg}");
    eprintln!("usage: els-lint [--json] [--baseline-update] [--root <workspace>]");
    ExitCode::from(2)
}

/// Walk up from the current directory to the first directory holding a
/// workspace `Cargo.toml` (one with a `[workspace]` table).
fn find_workspace_root() -> PathBuf {
    let mut dir = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
