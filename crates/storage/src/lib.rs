//! # els-storage
//!
//! In-memory column store and seeded data generators.
//!
//! This crate is the storage substrate for the reproduction of *On the
//! Estimation of Join Result Sizes* (Swami & Schiefer, EDBT 1994). The paper's
//! experiments ran inside the Starburst DBMS; here, tables are held as typed
//! column vectors in memory, which is sufficient because every quantity the
//! paper measures (estimated cardinalities, join orders, relative execution
//! times) depends only on logical data content and tuple/page counts, not on a
//! particular on-disk format.
//!
//! The main types are:
//!
//! * [`Value`] / [`DataType`] — the dynamically typed cell values.
//! * [`ColumnVector`] — a typed column with a validity (null) bitmap.
//! * [`Table`] — a named collection of equal-length columns, with a simple
//!   page model used by the optimizer's cost formulas.
//! * [`datagen`] — seeded generators (sequential, uniform, Zipf, constant,
//!   rotating) used to build the paper's S/M/B/G tables and the skew studies.
//!
//! # Example
//!
//! ```
//! use els_storage::{Table, DataType, datagen::{TableSpec, ColumnSpec, Distribution}};
//!
//! // The paper's table S: 1000 tuples, column `s` with 1000 distinct values.
//! let spec = TableSpec::new("S", 1000)
//!     .column(ColumnSpec::new("s", Distribution::SequentialInt { start: 0 }));
//! let table: Table = spec.generate(42);
//! assert_eq!(table.num_rows(), 1000);
//! assert_eq!(table.column_by_name("s").unwrap().distinct_count(), 1000);
//! ```

// Clippy-level twin of the els-lint panic-freedom and metrics-only-io
// passes (scripts/check.sh runs clippy with `-D warnings`, so these warn
// levels are bans on non-test library code).
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)
)]

pub mod column;
pub mod csv;
pub mod datagen;
pub mod error;
pub mod table;
pub mod value;

pub use column::ColumnVector;
pub use error::{StorageError, StorageResult};
pub use table::{Table, PAGE_SIZE_BYTES};
pub use value::{DataType, Value};
