//! Vendored, dependency-free stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! The build environment cannot reach a crates.io registry (see the
//! offline-build note in `DESIGN.md`), so property tests run against this
//! shim: strategies are plain samplers over a deterministic seeded RNG,
//! and the [`proptest!`] macro expands each property into a `#[test]`
//! that draws `ProptestConfig::cases` inputs. There is no shrinking —
//! failures report the drawn inputs' case number instead.
//!
//! Supported surface: range strategies over primitives, tuples of
//! strategies, [`collection::vec`], [`option::of`], [`bool::ANY`],
//! [`Strategy::prop_map`], [`prop_assert!`]/[`prop_assert_eq!`], and
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

#[doc(hidden)]
pub use rand as __rand;

/// Per-property configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed: the property does not hold.
    Fail(String),
    /// The case was rejected: the drawn input is outside the property's
    /// domain. Rejections are skipped, not failures.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case with a reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform drawn values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

/// An inclusive size range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, StdRng, Strategy};

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use super::__rand::Rng;
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{StdRng, Strategy};

    /// `Some` of the inner strategy with probability 1/2, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The result of [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            use super::__rand::Rng;
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{StdRng, Strategy};

    /// Strategy for an unbiased `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// An unbiased `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            use super::__rand::Rng;
            rng.gen_bool(0.5)
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert inside a property; failure message formats like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` drawing `cases` random inputs from a seed fixed per
/// property name (deterministic across runs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            let mut __rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    __seed,
                );
            let mut __ran = 0u32;
            let mut __attempts = 0u32;
            while __ran < __config.cases && __attempts < __config.cases.saturating_mul(10) {
                __attempts += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    Ok(()) => __ran += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(__m)) => {
                        panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name),
                            __ran,
                            __m
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, y in 0.0f64..1.0) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_and_option_shapes(
            v in crate::collection::vec(crate::option::of(0i64..8), 0..10),
            b in crate::bool::ANY,
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().flatten().all(|&x| (0..8).contains(&x)));
            let _ = b;
        }

        #[test]
        fn prop_map_applies(doubled in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }

        #[test]
        fn rejections_are_skipped(x in 0i64..10) {
            if x >= 5 {
                return Err(TestCaseError::reject("upper half"));
            }
            prop_assert!(x < 5);
        }
    }
}
