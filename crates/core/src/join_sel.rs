//! Join-predicate selectivities (Algorithm ELS, Step 5; paper Equation 2).
//!
//! The selectivity of a join predicate `R1.x1 = R2.x2` is
//!
//! ```text
//! S_J = 1 / max(d1, d2)
//! ```
//!
//! derived from the uniformity and containment assumptions (paper,
//! Section 2). Which `d` values are plugged in distinguishes the paper's
//! algorithm from the standard one: **ELS** uses the *effective* column
//! cardinalities after Steps 4–5, the **standard** algorithm the original
//! (unreduced) ones.

use crate::equivalence::EquivalenceClasses;
use crate::error::{ElsError, ElsResult};
use crate::ids::{ClassId, ColumnRef};
use crate::predicate::Predicate;

/// Equation 2: selectivity of one join predicate from its two column
/// cardinalities. Returns 0 when either column is empty (an empty side makes
/// the join empty, which a factor of 0 propagates).
/// # Examples
///
/// ```
/// use els_core::join_sel::join_selectivity;
/// assert_eq!(join_selectivity(10.0, 100.0), 0.01); // Example 1b's J1
/// ```
pub fn join_selectivity(d_left: f64, d_right: f64) -> f64 {
    let m = d_left.max(d_right);
    if d_left <= 0.0 || d_right <= 0.0 {
        return 0.0;
    }
    1.0 / m
}

/// One join predicate, annotated for the incremental estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPredicateInfo {
    /// Left column (lower-numbered table).
    pub left: ColumnRef,
    /// Right column (higher-numbered table).
    pub right: ColumnRef,
    /// The j-equivalence class both sides belong to.
    pub class: ClassId,
    /// Equation 2 selectivity, computed from the chosen distinct counts.
    pub selectivity: f64,
}

/// Annotate every [`Predicate::JoinEq`] in `predicates` with its class and
/// selectivity. `distinct_of` supplies the column cardinality to use (the
/// caller decides between effective and original values).
pub fn annotate_join_predicates(
    predicates: &[Predicate],
    classes: &EquivalenceClasses,
    mut distinct_of: impl FnMut(ColumnRef) -> f64,
) -> ElsResult<Vec<JoinPredicateInfo>> {
    let mut out = Vec::new();
    for p in predicates {
        if let Predicate::JoinEq { left, right } = p {
            let class = classes.class_of(*left).ok_or_else(|| {
                ElsError::MalformedPredicate(format!(
                    "join predicate {p} has no equivalence class (classes must be built \
                     from the same predicate set)"
                ))
            })?;
            debug_assert_eq!(classes.class_of(*right), Some(class));
            let selectivity = join_selectivity(distinct_of(*left), distinct_of(*right));
            out.push(JoinPredicateInfo { left: *left, right: *right, class, selectivity });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    #[test]
    fn example_1b_selectivities() {
        // d_x=10, d_y=100, d_z=1000 (paper Example 1b).
        assert_eq!(join_selectivity(10.0, 100.0), 0.01); // J1
        assert_eq!(join_selectivity(100.0, 1000.0), 0.001); // J2
        assert_eq!(join_selectivity(10.0, 1000.0), 0.001); // J3
    }

    #[test]
    fn selectivity_is_symmetric() {
        assert_eq!(join_selectivity(7.0, 3.0), join_selectivity(3.0, 7.0));
    }

    #[test]
    fn empty_side_gives_zero() {
        assert_eq!(join_selectivity(0.0, 100.0), 0.0);
        assert_eq!(join_selectivity(10.0, 0.0), 0.0);
    }

    #[test]
    fn annotate_assigns_classes_and_selectivities() {
        let preds = crate::closure::transitive_closure(&[
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
        ]);
        let classes = EquivalenceClasses::from_predicates(&preds);
        let d = |cr: ColumnRef| [10.0, 100.0, 1000.0][cr.table];
        let infos = annotate_join_predicates(&preds, &classes, d).unwrap();
        assert_eq!(infos.len(), 3);
        assert!(infos.iter().all(|i| i.class == ClassId(0)));
        let mut sels: Vec<f64> = infos.iter().map(|i| i.selectivity).collect();
        sels.sort_by(f64::total_cmp);
        assert_eq!(sels, vec![0.001, 0.001, 0.01]);
    }

    #[test]
    fn annotate_rejects_classless_join_predicate() {
        // Classes built from a *different* predicate set than the join list.
        let classes = EquivalenceClasses::from_predicates(&[]);
        let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0))];
        let err = annotate_join_predicates(&preds, &classes, |_| 1.0).unwrap_err();
        assert!(matches!(err, ElsError::MalformedPredicate(_)));
    }

    #[test]
    fn annotate_skips_local_predicates() {
        let preds = vec![Predicate::local_cmp(c(0, 0), crate::CmpOp::Lt, 5i64)];
        let classes = EquivalenceClasses::from_predicates(&preds);
        let infos = annotate_join_predicates(&preds, &classes, |_| 1.0).unwrap();
        assert!(infos.is_empty());
    }
}
