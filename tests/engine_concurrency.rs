//! Concurrency and plan-cache semantics of the shared [`els::engine::Engine`]:
//! many threads over one engine must produce exactly the serial results, the
//! catalog epoch must fence off stale plans, and cache hits must skip join
//! enumeration.
//!
//! The enumeration counter (`els_exec::metrics::enumerations`) is
//! process-wide, so every test here serializes on [`GUARD`] — otherwise a
//! concurrently running test's optimizations would pollute the deltas.

use std::sync::Mutex;

use els::catalog::FeedbackMode;
use els::engine::Engine;
use els::exec::metrics::enumerations;
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};

static GUARD: Mutex<()> = Mutex::new(());

/// A small three-table engine: joins take microseconds, so the stress test
/// stays fast even in debug builds.
fn small_engine() -> Engine {
    let engine = Engine::new();
    engine
        .generate(
            TableSpec::new("a", 1000)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
                .column(ColumnSpec::new("f", Distribution::UniformInt { lo: 0, hi: 99 })),
            1,
        )
        .unwrap();
    engine
        .generate(
            TableSpec::new("b", 500)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
            2,
        )
        .unwrap();
    engine
        .generate(
            TableSpec::new("c", 200)
                .column(ColumnSpec::new("k", Distribution::CycleInt { modulus: 50, start: 0 })),
            3,
        )
        .unwrap();
    engine
}

/// The mixed query set: joins, filters, projections, formatting variants.
fn mixed_queries() -> Vec<String> {
    let mut queries = vec![
        "SELECT COUNT(*) FROM a".to_owned(),
        "SELECT COUNT(*) FROM a WHERE k < 100".to_owned(),
        "SELECT COUNT(*) FROM a, b WHERE a.k = b.k".to_owned(),
        // Same query as above up to canonicalization.
        "select count(*) from a, b where b.k = a.k".to_owned(),
        "SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.k < 10".to_owned(),
        "SELECT COUNT(*) FROM b, c WHERE b.k = c.k".to_owned(),
        "SELECT COUNT(*) FROM a, b, c WHERE a.k = b.k AND b.k = c.k".to_owned(),
        "SELECT a.k FROM a, b WHERE a.k = b.k AND a.k < 5".to_owned(),
    ];
    for cut in [20, 40, 60, 80] {
        queries.push(format!("SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.f < {cut}"));
    }
    queries
}

#[test]
fn eight_threads_of_mixed_queries_match_serial_results() {
    let _guard = GUARD.lock().unwrap();
    let engine = small_engine();
    let queries = mixed_queries();

    // Serial ground truth from an identical but separate engine.
    let reference = small_engine();
    let expected: Vec<u64> = queries.iter().map(|q| reference.execute(q).unwrap().count).collect();

    std::thread::scope(|scope| {
        for t in 0..8usize {
            let engine = &engine;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                // 100 queries per thread, each thread in a different order.
                for i in 0..100usize {
                    let q = (i + t) % queries.len();
                    let out = engine.execute(&queries[q]).unwrap();
                    assert_eq!(
                        out.count, expected[q],
                        "thread {t} iteration {i} diverged on `{}`",
                        queries[q]
                    );
                }
            });
        }
    });

    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, 800, "every execution consults the cache");
    // 12 query texts, 11 distinct fingerprints (two differ only in
    // formatting); everything after the cold pass should hit.
    assert!(stats.hit_rate() > 0.9, "{stats:?}");
    assert_eq!(stats.invalidations, 0);
}

#[test]
fn cache_hits_skip_enumeration() {
    let _guard = GUARD.lock().unwrap();
    let engine = small_engine();
    let sql = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.k < 10";

    let before = enumerations();
    let cold = engine.execute(sql).unwrap();
    let after_cold = enumerations();
    assert!(!cold.cache_hit);
    assert!(after_cold > before, "a miss must run join enumeration");

    let warm = engine.execute(sql).unwrap();
    assert!(warm.cache_hit);
    assert_eq!(enumerations(), after_cold, "a hit must not re-enumerate");
    assert_eq!(warm.count, cold.count);
    assert_eq!(warm.join_order, cold.join_order);

    // A canonically equal spelling also skips enumeration.
    let respelled = engine.execute("select count(*) from a, b where b.k = a.k and a.k < 10");
    assert!(respelled.unwrap().cache_hit);
    assert_eq!(enumerations(), after_cold);
}

#[test]
fn epoch_bump_invalidates_cached_plans() {
    let _guard = GUARD.lock().unwrap();
    let engine = small_engine();
    let sql = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k";
    assert!(!engine.execute(sql).unwrap().cache_hit);
    assert!(engine.execute(sql).unwrap().cache_hit);

    // Any catalog mutation bumps the epoch...
    let epoch = engine.epoch();
    engine
        .generate(
            TableSpec::new("d", 10)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
            4,
        )
        .unwrap();
    assert_eq!(engine.epoch(), epoch + 1);

    // ...so the next execution re-optimizes (counted as an invalidation)
    // and re-caches at the new epoch.
    let before = enumerations();
    let replanned = engine.execute(sql).unwrap();
    assert!(!replanned.cache_hit, "stale-epoch plan must not be served");
    assert!(enumerations() > before);
    assert_eq!(engine.cache_stats().invalidations, 1);
    assert!(engine.execute(sql).unwrap().cache_hit, "new-epoch plan caches normally");

    // Explicit invalidation works without any content change.
    engine.invalidate_plans();
    assert!(!engine.execute(sql).unwrap().cache_hit);
}

#[test]
fn feedback_apply_stays_correct_and_bounded_under_concurrency() {
    let _guard = GUARD.lock().unwrap();
    // Skewed data so corrections actually publish while eight threads hammer
    // the same queries: results must stay exactly serial, no observation may
    // be lost, and the per-key publication cap must bound epoch churn.
    let make = || {
        let engine = Engine::new().feedback(FeedbackMode::Apply);
        engine
            .generate(
                TableSpec::new("z", 2000).column(ColumnSpec::new(
                    "k",
                    Distribution::ZipfInt { n: 1000, theta: 1.0, start: 0 },
                )),
                7,
            )
            .unwrap();
        engine
            .generate(
                TableSpec::new("b", 500)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                2,
            )
            .unwrap();
        engine
    };
    let engine = make();
    let queries = [
        "SELECT COUNT(*) FROM z WHERE k < 10".to_owned(),
        "SELECT COUNT(*) FROM z WHERE k < 50".to_owned(),
        "SELECT COUNT(*) FROM z, b WHERE z.k = b.k".to_owned(),
        "SELECT COUNT(*) FROM z, b WHERE z.k = b.k AND z.k < 10".to_owned(),
    ];
    let reference = make();
    let expected: Vec<u64> = queries.iter().map(|q| reference.execute(q).unwrap().count).collect();

    std::thread::scope(|scope| {
        for t in 0..8usize {
            let engine = &engine;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for i in 0..50usize {
                    let q = (i + t) % queries.len();
                    let out = engine.execute(&queries[q]).unwrap();
                    assert_eq!(
                        out.count, expected[q],
                        "thread {t} iteration {i} diverged on `{}`",
                        queries[q]
                    );
                }
            });
        }
    });

    let counters = engine.snapshot().feedback().counters();
    // Every execution harvests at least its root operator: 400 executions,
    // no lost updates under contention.
    assert!(counters.learned >= 400, "observations were lost: {counters:?}");
    // Edge-triggered publication with a per-key cap bounds epoch churn: far
    // fewer bumps than executions, and never more than cap x keys.
    assert!(counters.epoch_bumps >= 1, "skewed workload must publish: {counters:?}");
    assert!(
        counters.epoch_bumps <= 8 * counters.keys,
        "epoch churn exceeded the per-key cap: {counters:?}"
    );
    assert!(
        counters.epoch_bumps < 40,
        "epoch bumps should be rare after corrections settle: {counters:?}"
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, 400);
    // Corrections settle, so the cache still serves the vast majority of
    // executions from corrected plans.
    assert!(stats.hit_rate() > 0.8, "{stats:?}");
}

#[test]
fn snapshot_isolation_under_concurrent_registration() {
    let _guard = GUARD.lock().unwrap();
    let engine = small_engine();
    let queries = mixed_queries();
    let reference = small_engine();
    let expected: Vec<u64> = queries.iter().map(|q| reference.execute(q).unwrap().count).collect();

    // Readers keep getting correct answers while a writer registers new
    // tables (bumping the epoch under them).
    let engine = &engine;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..6u64 {
                engine
                    .generate(
                        TableSpec::new(format!("extra{i}"), 50)
                            .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                        10 + i,
                    )
                    .unwrap();
            }
        });
        for t in 0..4usize {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for i in 0..50usize {
                    let q = (i + t) % queries.len();
                    assert_eq!(engine.execute(&queries[q]).unwrap().count, expected[q]);
                }
            });
        }
    });
    // All six registrations landed despite the read traffic.
    assert_eq!(engine.snapshot().len(), 3 + 6);
    // Readers raced epoch bumps, so *some* lookups were invalidated or
    // missed, but the final counters must balance.
    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, 200);
}
