//! Execution metrics.
//!
//! The paper reports elapsed seconds; this engine additionally counts
//! logical work (tuples, comparisons) and *simulated page reads* under the
//! storage page model so plan quality can be compared deterministically,
//! independent of machine noise. Nested-loops inner rescans are charged
//! their full page count per outer tuple — the cost structure that makes
//! misplaced giant tables expensive, exactly the failure mode the paper's
//! experiment demonstrates.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use els_core::sync::lock_recovering;

/// Counters accumulated while executing one plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecMetrics {
    /// Tuples read out of base tables.
    pub tuples_scanned: u64,
    /// Logical page reads (base scans + NL inner rescans), regardless of
    /// buffering.
    pub pages_read: u64,
    /// Physical page reads of *base tables*: equals the base-table share of
    /// `pages_read` when unbuffered, less when a buffer pool absorbs
    /// rescans (see [`crate::buffer`]). Intermediate-result "pages" are
    /// memory-resident and never counted here.
    pub physical_pages_read: u64,
    /// Tuples produced by all operators.
    pub tuples_emitted: u64,
    /// Key comparisons performed by joins and sorts.
    pub comparisons: u64,
    /// Rows passed through sort operators.
    pub rows_sorted: u64,
    /// Hash-table probes.
    pub hash_probes: u64,
    /// Rows examined by vectorized filter kernels (candidate rows per
    /// kernel invocation; equals `comparisons` charged by the kernels).
    pub kernel_rows: u64,
    /// In-place selection-vector compactions: each conjunct after the first
    /// reuses the scan's selection vector instead of materializing rows.
    pub sel_reuses: u64,
    /// Probe-side morsels dispatched to parallel join workers. Charged
    /// identically on the serial path (the morsels it *would* dispatch), so
    /// the number is a property of the plan, not the schedule.
    pub morsels: u64,
    /// Radix partitions built by partitioned hash joins (0 when every join
    /// ran unpartitioned).
    pub partitions: u64,
    /// Tasks the work-stealing scheduler moved between workers. The one
    /// schedule-dependent counter: monitoring only, never compared across
    /// runs.
    pub steals: u64,
    /// `(u32, u32)` row-id pair lists materialized by vectorized join
    /// kernels. Fused `COUNT(*)` roots produce none; the differential tests
    /// assert that.
    pub pair_lists: u64,
    /// Rows emitted by range (band) join operators — the inequality-join
    /// twin of `tuples_emitted`, kept separate so band-join output volume
    /// is observable next to equi-join traffic. Charged identically by the
    /// row and vectorized operators (the differential tests compare it).
    pub range_join_rows: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl ExecMetrics {
    /// Merge another metrics record into this one (durations add).
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.tuples_scanned += other.tuples_scanned;
        self.pages_read += other.pages_read;
        self.physical_pages_read += other.physical_pages_read;
        self.tuples_emitted += other.tuples_emitted;
        self.comparisons += other.comparisons;
        self.rows_sorted += other.rows_sorted;
        self.hash_probes += other.hash_probes;
        self.kernel_rows += other.kernel_rows;
        self.sel_reuses += other.sel_reuses;
        self.morsels += other.morsels;
        self.partitions += other.partitions;
        self.steals += other.steals;
        self.pair_lists += other.pair_lists;
        self.range_join_rows += other.range_join_rows;
        self.elapsed += other.elapsed;
    }
}

impl fmt::Display for ExecMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} pages={} phys={} emitted={} cmps={} sorted={} probes={} kernel={} \
             selreuse={} morsels={} parts={} steals={} pairlists={} rangerows={} elapsed={:?}",
            self.tuples_scanned,
            self.pages_read,
            self.physical_pages_read,
            self.tuples_emitted,
            self.comparisons,
            self.rows_sorted,
            self.hash_probes,
            self.kernel_rows,
            self.sel_reuses,
            self.morsels,
            self.partitions,
            self.steals,
            self.pair_lists,
            self.range_join_rows,
            self.elapsed
        )
    }
}

/// Thread-safe counters for the cache-fronted engine: plan-cache traffic
/// plus how often the optimizer's join enumeration actually ran. The
/// per-query [`ExecMetrics`] above stays a plain value; these are the
/// *shared* counters many serving threads bump concurrently, so they are
/// atomics behind `&self`.
///
/// The cache counters are per-cache instances (each
/// `els-optimizer` plan cache owns one); the enumeration counter is
/// process-wide (see [`record_enumeration`]) because enumeration happens
/// far below any engine object.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Plan-cache lookups answered from the cache.
    pub hits: AtomicU64,
    /// Plan-cache lookups that had to optimize.
    pub misses: AtomicU64,
    /// Entries evicted by the capacity bound (LRU).
    pub evictions: AtomicU64,
    /// Entries dropped because their catalog epoch went stale.
    pub invalidations: AtomicU64,
}

impl EngineCounters {
    /// A zeroed counter set.
    pub fn new() -> EngineCounters {
        EngineCounters::default()
    }

    /// A consistent-enough point-in-time copy (each counter is read
    /// atomically; the set is not a single snapshot, which is fine for
    /// monitoring).
    pub fn snapshot(&self) -> EngineCountersSnapshot {
        EngineCountersSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`EngineCounters`] for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCountersSnapshot {
    /// Plan-cache hits.
    pub hits: u64,
    /// Plan-cache misses.
    pub misses: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Stale-epoch invalidations.
    pub invalidations: u64,
}

impl EngineCountersSnapshot {
    /// Hit fraction of all lookups (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for EngineCountersSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} invalidations={} hit_rate={:.1}%",
            self.hits,
            self.misses,
            self.evictions,
            self.invalidations,
            self.hit_rate() * 100.0
        )
    }
}

/// Escape a string for embedding in a JSON string literal (the inner
/// text only — the caller supplies the surrounding quotes). Handles the
/// full JSON escape set: quote, backslash, and every control character
/// below 0x20 (named escapes for the common ones, `\u00XX` otherwise).
/// Every hand-rolled JSON emitter in the workspace must route map keys
/// and string values through this — an unescaped `"` or `\` in a
/// rule/counter key silently produces invalid JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            // els-lint: allow(numeric-discipline, "char as u32 is a lossless widening (chars are 21-bit scalar values); the lint cannot see source types")
            c if (c as u32) < 0x20 => {
                // els-lint: allow(numeric-discipline, "same lossless char-to-u32 widening as the guard above")
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Process-wide count of join-enumeration runs. The benchmark acceptance
/// check "cache hits skip `enumerate()`" needs an observable signal from
/// inside the optimizer; `els-optimizer` depends on this crate, so the
/// counter lives here next to the other metrics.
static ENUMERATIONS: AtomicU64 = AtomicU64::new(0);

/// Record one join-enumeration run (called by `els-optimizer`).
pub fn record_enumeration() {
    ENUMERATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Total join-enumeration runs in this process so far. Compare before/after
/// deltas rather than absolute values: any thread may optimize concurrently.
pub fn enumerations() -> u64 {
    ENUMERATIONS.load(Ordering::Relaxed)
}

/// Fixed-size log₂ histogram of q-errors.
///
/// q-errors live on a multiplicative scale — a factor-2 overestimate and a
/// factor-2 underestimate are equally bad — so bucket `i` covers the range
/// `[2^i, 2^(i+1))`. Bucket 0 therefore holds the "essentially exact"
/// estimates (q-error in `[1, 2)`); the last bucket absorbs everything
/// beyond `2^31`, including the `INFINITY` assigned to NaN estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct QErrorHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    max: f64,
}

impl Default for QErrorHistogram {
    fn default() -> Self {
        QErrorHistogram { buckets: [0; Self::BUCKETS], count: 0, max: 1.0 }
    }
}

impl QErrorHistogram {
    const BUCKETS: usize = 32;

    /// An empty histogram.
    pub fn new() -> QErrorHistogram {
        QErrorHistogram::default()
    }

    /// Record one q-error. Values below 1 (impossible for a real q-error)
    /// clamp to 1; NaN and infinity land in the overflow bucket.
    pub fn record(&mut self, q: f64) {
        let q = if q.is_nan() { f64::INFINITY } else { q.max(1.0) };
        let bucket = if q.is_finite() {
            // els-lint: allow(numeric-discipline, "q is finite and >= 1 here, so log2 is in [0, 1024): the floor fits usize and the min() clamps the bucket")
            (q.log2().floor() as usize).min(Self::BUCKETS - 1)
        } else {
            Self::BUCKETS - 1
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        if q > self.max {
            self.max = q;
        }
    }

    /// Number of recorded q-errors.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded q-error (1.0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate `p`-quantile (`p` in `[0, 1]`, clamped; NaN reads as 0).
    /// Nearest-rank over the buckets; the returned value is the geometric
    /// midpoint `2^(i + 0.5)` of the selected bucket, capped by the true
    /// recorded maximum so a histogram of exact estimates reports 1.0, not
    /// √2. Returns 1.0 for an empty histogram.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        // els-lint: allow(numeric-discipline, "p is clamped to [0, 1] above, so the product is bounded by count and the cast cannot saturate")
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = 2f64.powf(i as f64 + 0.5);
                return mid.min(self.max).max(1.0);
            }
        }
        self.max
    }

    /// Median q-error.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th-percentile q-error.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &QErrorHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Process-wide aggregation point for the estimation-observability layer:
/// per-selectivity-rule q-error histograms fed by `explain_analyze`,
/// mirrored plan-cache counters, and cumulative kernel counters. One
/// instance per process (see [`MetricsRegistry::global`]), following the
/// same placement logic as [`record_enumeration`]: this crate is the lowest
/// layer that both the optimizer (cache counters) and the engine (q-errors)
/// can reach.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    qerr: Mutex<BTreeMap<String, QErrorHistogram>>,
    cache: EngineCounters,
    queries: AtomicU64,
    kernel_rows: AtomicU64,
    morsels: AtomicU64,
    partitions: AtomicU64,
    steals: AtomicU64,
    hash_probes: AtomicU64,
    tuples_scanned: AtomicU64,
    range_join_rows: AtomicU64,
    feedback_learned: AtomicU64,
    feedback_applied: AtomicU64,
    feedback_epoch_bumps: AtomicU64,
    server: ServerCounters,
}

/// Shared counters for the TCP front door (`els-server`): connection and
/// query traffic plus the two overload outcomes — hard rejections at the
/// admission queue and queries shed because only cached plans are served
/// under load. Atomics behind `&self`, like [`EngineCounters`].
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted and handed to a worker.
    pub connections: AtomicU64,
    /// Queries answered successfully over the wire.
    pub queries_ok: AtomicU64,
    /// Queries answered with a typed error (SQL/exec/protocol).
    pub queries_err: AtomicU64,
    /// Connections rejected at admission because the queue was full.
    pub rejected: AtomicU64,
    /// Queries refused in cached-plan-only (degraded) mode.
    pub shed: AtomicU64,
}

impl ServerCounters {
    /// Point-in-time copy (per-counter atomic reads, like
    /// [`EngineCounters::snapshot`]).
    pub fn snapshot(&self) -> ServerCountersSnapshot {
        ServerCountersSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_err: self.queries_err.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`ServerCounters`] for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCountersSnapshot {
    /// Connections accepted and handed to a worker.
    pub connections: u64,
    /// Queries answered successfully.
    pub queries_ok: u64,
    /// Queries answered with a typed error.
    pub queries_err: u64,
    /// Connections rejected at admission (queue full).
    pub rejected: u64,
    /// Queries refused in cached-plan-only mode.
    pub shed: u64,
}

impl MetricsRegistry {
    /// A fresh, empty registry (for tests; production code uses
    /// [`MetricsRegistry::global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::default)
    }

    /// Record one per-operator (or per-query) q-error under a selectivity
    /// rule label (e.g. `"LS"`, `"M"`).
    pub fn record_q_error(&self, rule: &str, q: f64) {
        let mut map = lock_recovering(&self.qerr);
        map.entry(rule.to_owned()).or_default().record(q);
    }

    /// Fold one finished query's execution counters into the totals.
    pub fn record_query(&self, metrics: &ExecMetrics) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.kernel_rows.fetch_add(metrics.kernel_rows, Ordering::Relaxed);
        self.morsels.fetch_add(metrics.morsels, Ordering::Relaxed);
        self.partitions.fetch_add(metrics.partitions, Ordering::Relaxed);
        self.steals.fetch_add(metrics.steals, Ordering::Relaxed);
        self.hash_probes.fetch_add(metrics.hash_probes, Ordering::Relaxed);
        self.tuples_scanned.fetch_add(metrics.tuples_scanned, Ordering::Relaxed);
        self.range_join_rows.fetch_add(metrics.range_join_rows, Ordering::Relaxed);
    }

    /// The registry's plan-cache counters. Plan caches mirror their bumps
    /// here so the registry sees process-wide cache traffic even though each
    /// cache instance also keeps its own counters.
    pub fn cache_counters(&self) -> &EngineCounters {
        &self.cache
    }

    /// Fold one query's runtime-feedback activity into the totals:
    /// `(estimated, actual)` pairs harvested, published corrections the
    /// optimizer consumed, and correction-driven plan invalidations.
    pub fn record_feedback(&self, learned: u64, applied: u64, epoch_bumps: u64) {
        self.feedback_learned.fetch_add(learned, Ordering::Relaxed);
        self.feedback_applied.fetch_add(applied, Ordering::Relaxed);
        self.feedback_epoch_bumps.fetch_add(epoch_bumps, Ordering::Relaxed);
    }

    /// Cumulative feedback totals `(learned, applied, epoch_bumps)`.
    pub fn feedback_totals(&self) -> (u64, u64, u64) {
        (
            self.feedback_learned.load(Ordering::Relaxed),
            self.feedback_applied.load(Ordering::Relaxed),
            self.feedback_epoch_bumps.load(Ordering::Relaxed),
        )
    }

    /// The front door's connection/query/shed/reject counters. The server
    /// bumps these directly; monitoring reads them here or through the
    /// `"server"` section of [`MetricsRegistry::to_json`].
    pub fn server_counters(&self) -> &ServerCounters {
        &self.server
    }

    /// Number of queries folded in via [`MetricsRegistry::record_query`].
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Copy of the q-error histogram recorded under `rule`, if any.
    pub fn q_error_histogram(&self, rule: &str) -> Option<QErrorHistogram> {
        lock_recovering(&self.qerr).get(rule).cloned()
    }

    /// JSON export of everything in the registry. Hand-rolled (no serde in
    /// the dependency tree) but stable: keys are sorted, floats rendered
    /// with fixed precision, infinities as the JSON-safe string `"inf"`.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "\"inf\"".to_owned()
            }
        }
        let cache = self.cache.snapshot();
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"queries\": {},", self.queries());
        let _ = writeln!(
            json,
            "  \"plan_cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"invalidations\": {} }},",
            cache.hits, cache.misses, cache.evictions, cache.invalidations
        );
        let _ = writeln!(
            json,
            "  \"kernels\": {{ \"kernel_rows\": {}, \"morsels\": {}, \"partitions\": {}, \
             \"steals\": {}, \"hash_probes\": {}, \"tuples_scanned\": {}, \
             \"range_join_rows\": {} }},",
            self.kernel_rows.load(Ordering::Relaxed),
            self.morsels.load(Ordering::Relaxed),
            self.partitions.load(Ordering::Relaxed),
            self.steals.load(Ordering::Relaxed),
            self.hash_probes.load(Ordering::Relaxed),
            self.tuples_scanned.load(Ordering::Relaxed),
            self.range_join_rows.load(Ordering::Relaxed),
        );
        let (learned, applied, epoch_bumps) = self.feedback_totals();
        let _ = writeln!(
            json,
            "  \"feedback\": {{ \"learned\": {learned}, \"applied\": {applied}, \
             \"epoch_bumps\": {epoch_bumps} }},",
        );
        let srv = self.server.snapshot();
        let _ = writeln!(
            json,
            "  \"server\": {{ \"connections\": {}, \"queries_ok\": {}, \"queries_err\": {}, \
             \"rejected\": {}, \"shed\": {} }},",
            srv.connections, srv.queries_ok, srv.queries_err, srv.rejected, srv.shed
        );
        json.push_str("  \"q_error\": {");
        let map = lock_recovering(&self.qerr);
        for (i, (rule, h)) in map.iter().enumerate() {
            let _ = write!(
                json,
                "{}\n    \"{}\": {{ \"count\": {}, \"p50\": {}, \"p95\": {}, \"max\": {} }}",
                if i == 0 { "" } else { "," },
                json_escape(rule),
                h.count(),
                num(h.median()),
                num(h.p95()),
                num(h.max()),
            );
        }
        if !map.is_empty() {
            json.push_str("\n  ");
        }
        json.push_str("}\n}\n");
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_everything() {
        let mut a = ExecMetrics {
            tuples_scanned: 1,
            pages_read: 2,
            physical_pages_read: 2,
            tuples_emitted: 3,
            comparisons: 4,
            rows_sorted: 5,
            hash_probes: 6,
            kernel_rows: 7,
            sel_reuses: 8,
            morsels: 9,
            partitions: 10,
            steals: 11,
            pair_lists: 12,
            range_join_rows: 13,
            elapsed: Duration::from_millis(10),
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.tuples_scanned, 2);
        assert_eq!(a.pages_read, 4);
        assert_eq!(a.comparisons, 8);
        assert_eq!(a.kernel_rows, 14);
        assert_eq!(a.sel_reuses, 16);
        assert_eq!(a.morsels, 18);
        assert_eq!(a.partitions, 20);
        assert_eq!(a.steals, 22);
        assert_eq!(a.pair_lists, 24);
        assert_eq!(a.range_join_rows, 26);
        assert_eq!(a.elapsed, Duration::from_millis(20));
    }

    #[test]
    fn display_is_one_line() {
        let m = ExecMetrics::default();
        let s = m.to_string();
        assert!(s.contains("pages=0"));
        assert!(!s.contains('\n'));
    }

    #[test]
    fn counters_snapshot_and_hit_rate() {
        let c = EngineCounters::new();
        c.hits.fetch_add(3, Ordering::Relaxed);
        c.misses.fetch_add(1, Ordering::Relaxed);
        c.evictions.fetch_add(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.invalidations, 0);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(EngineCountersSnapshot::default().hit_rate(), 0.0);
        assert!(s.to_string().contains("hit_rate=75.0%"));
    }

    #[test]
    fn enumeration_counter_is_monotonic() {
        let before = enumerations();
        record_enumeration();
        record_enumeration();
        assert!(enumerations() >= before + 2);
    }

    #[test]
    fn histogram_of_exact_estimates_reports_one() {
        let mut h = QErrorHistogram::new();
        for _ in 0..10 {
            h.record(1.0);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.median(), 1.0);
        assert_eq!(h.p95(), 1.0);
        assert_eq!(h.max(), 1.0);
    }

    #[test]
    fn histogram_quantiles_track_the_distribution() {
        let mut h = QErrorHistogram::new();
        // 90 near-exact estimates, 10 bad ones around 1000x.
        for _ in 0..90 {
            h.record(1.2);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        assert!(h.median() < 2.0, "median {}", h.median());
        assert!(h.p95() > 500.0 && h.p95() <= 1000.0, "p95 {}", h.p95());
        assert_eq!(h.max(), 1000.0);
    }

    #[test]
    fn histogram_handles_degenerate_values() {
        let mut h = QErrorHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(0.5); // impossible q-error, clamps to 1
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), f64::INFINITY);
        // Quantile with garbage p must not panic.
        assert!(h.quantile(f64::NAN) >= 1.0);
        assert!(h.quantile(-3.0) >= 1.0);
        assert!(h.quantile(7.0) >= 1.0);
        // Empty histogram is "perfect".
        assert_eq!(QErrorHistogram::new().median(), 1.0);
    }

    #[test]
    fn histogram_merge_combines_counts_and_max() {
        let mut a = QErrorHistogram::new();
        a.record(2.0);
        let mut b = QErrorHistogram::new();
        b.record(64.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 64.0);
    }

    #[test]
    fn registry_aggregates_and_exports_json() {
        let r = MetricsRegistry::new();
        r.record_q_error("LS", 1.0);
        r.record_q_error("LS", 4.0);
        r.record_q_error("M", 100.0);
        r.record_query(&ExecMetrics {
            kernel_rows: 5,
            morsels: 2,
            partitions: 4,
            steals: 3,
            range_join_rows: 6,
            ..ExecMetrics::default()
        });
        r.cache_counters().hits.fetch_add(1, Ordering::Relaxed);

        assert_eq!(r.queries(), 1);
        let ls = r.q_error_histogram("LS").unwrap();
        assert_eq!(ls.count(), 2);
        assert!(r.q_error_histogram("SS").is_none());

        r.record_feedback(3, 2, 1);
        assert_eq!(r.feedback_totals(), (3, 2, 1));

        let json = r.to_json();
        assert!(json.contains("\"queries\": 1"), "{json}");
        assert!(json.contains("\"kernel_rows\": 5"), "{json}");
        assert!(json.contains("\"partitions\": 4"), "{json}");
        assert!(json.contains("\"steals\": 3"), "{json}");
        assert!(json.contains("\"range_join_rows\": 6"), "{json}");
        assert!(json.contains("\"feedback\": { \"learned\": 3, \"applied\": 2"), "{json}");
        assert!(json.contains("\"hits\": 1"), "{json}");
        assert!(json.contains("\"LS\""), "{json}");
        assert!(json.contains("\"M\""), "{json}");
        // Rules are emitted in sorted order (BTreeMap) for stable output.
        assert!(json.find("\"LS\"").unwrap() < json.find("\"M\"").unwrap());
    }

    #[test]
    fn json_escape_covers_the_escape_set() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape(r"a\b"), r"a\\b");
        assert_eq!(json_escape("a\nb\tc\rd"), r"a\nb\tc\rd");
        assert_eq!(json_escape("\u{08}\u{0c}\u{01}"), "\\b\\f\\u0001");
        // Non-ASCII passes through untouched (JSON strings are UTF-8).
        assert_eq!(json_escape("héllo⋈"), "héllo⋈");
    }

    #[test]
    fn registry_json_escapes_hostile_rule_keys() {
        let r = MetricsRegistry::new();
        // A rule key with a quote, a backslash, and a newline must not
        // produce invalid JSON.
        r.record_q_error("evil\"rule\\name\nx", 2.0);
        let json = r.to_json();
        assert!(json.contains(r#""evil\"rule\\name\nx""#), "{json}");
        // The raw quote/newline must not appear unescaped inside the key:
        // every line with the key must carry the escaped forms only.
        for line in json.lines() {
            if line.contains("evil") {
                assert!(!line.contains("evil\"rule"), "unescaped quote: {line}");
            }
        }
    }

    #[test]
    fn registry_server_counters_round_trip_into_json() {
        let r = MetricsRegistry::new();
        let s = r.server_counters();
        s.connections.fetch_add(3, Ordering::Relaxed);
        s.queries_ok.fetch_add(10, Ordering::Relaxed);
        s.queries_err.fetch_add(2, Ordering::Relaxed);
        s.rejected.fetch_add(4, Ordering::Relaxed);
        s.shed.fetch_add(5, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.connections, 3);
        assert_eq!(snap.queries_ok, 10);
        let json = r.to_json();
        assert!(
            json.contains(
                "\"server\": { \"connections\": 3, \"queries_ok\": 10, \"queries_err\": 2, \
                 \"rejected\": 4, \"shed\": 5 }"
            ),
            "{json}"
        );
    }

    #[test]
    fn registry_json_renders_infinite_max_safely() {
        let r = MetricsRegistry::new();
        r.record_q_error("LS", f64::NAN);
        let json = r.to_json();
        assert!(json.contains("\"inf\""), "{json}");
        assert!(!json.contains("NaN"), "{json}");
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = MetricsRegistry::global() as *const _;
        let b = MetricsRegistry::global() as *const _;
        assert_eq!(a, b);
    }
}
