//! **F1** — estimation error vs number of joins.
//!
//! An error-propagation study in the spirit of Ioannidis & Christodoulakis
//! [4], which the paper cites as motivation: single-equivalence-class chain
//! queries over n = 2..12 tables with random cardinalities, estimated under
//! Rules M, SS, and LS, measured as the ratio estimate/truth against the
//! Equation 3 closed form (the exact expectation under the model
//! assumptions). Reported per n as the geometric mean over 200 random
//! catalogs.
//!
//! Expected shape: Rule M's ratio decays multiplicatively (catastrophic
//! underestimation as joins accumulate), Rule SS decays more slowly, and
//! Rule LS stays at exactly 1.

use els_bench::{chain_predicates, chain_statistics, geometric_mean};
use els_core::{exact, Els, ElsOptions, SelectivityRule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    const TRIALS: usize = 200;
    let rules = [
        ("M", SelectivityRule::Multiplicative),
        ("SS", SelectivityRule::SmallestSelectivity),
        ("LS", SelectivityRule::LargestSelectivity),
    ];

    println!("# F1 — estimate/true ratio vs number of joined tables");
    println!("(geometric mean over {TRIALS} random chain catalogs; truth = Equation 3)\n");
    println!("| {:>2} | {:>12} | {:>12} | {:>12} |", "n", "Rule M", "Rule SS", "Rule LS");
    println!("|{}|{}|{}|{}|", "-".repeat(4), "-".repeat(14), "-".repeat(14), "-".repeat(14));

    for n in 2..=12usize {
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); rules.len()];
        let mut rng = StdRng::seed_from_u64(1994 + n as u64);
        for _ in 0..TRIALS {
            // Random dims: d <= rows, both log-uniform-ish.
            let dims: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    let d = rng.gen_range(2..2000) as f64;
                    let rows = d * rng.gen_range(1..50) as f64;
                    (rows, d)
                })
                .collect();
            let truth = exact::n_way(&dims);
            let stats = chain_statistics(&dims);
            let preds = chain_predicates(n);
            // A random join order, fresh per trial.
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for (slot, (_, rule)) in rules.iter().enumerate() {
                let els =
                    Els::prepare(&preds, &stats, &ElsOptions::default().with_rule(*rule)).unwrap();
                let est = els.estimate_final(&order).unwrap();
                ratios[slot].push(est / truth);
            }
        }
        println!(
            "| {:>2} | {:>12.4e} | {:>12.4e} | {:>12.6} |",
            n,
            geometric_mean(&ratios[0]),
            geometric_mean(&ratios[1]),
            geometric_mean(&ratios[2]),
        );
    }
    println!("\nexpected shape: M decays multiplicatively, SS decays slower, LS == 1 exactly.");
}
