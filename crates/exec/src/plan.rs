//! Physical plan trees.
//!
//! Plans are built by `els-optimizer` and interpreted by
//! [`crate::executor`]. A plan mirrors the shapes available to the paper's
//! Starburst experiment: filtered base-table scans composed by binary joins
//! with a per-join method choice, topped by an optional projection or
//! `COUNT(*)`.

use els_core::predicate::CmpOp;
use els_core::ColumnRef;

use crate::filter::CompiledFilter;

/// Join algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinMethod {
    /// Tuple-at-a-time nested loops (inner rescanned per outer tuple).
    NestedLoop,
    /// Sort both sides, merge equal-key runs.
    SortMerge,
    /// Build a hash table on the left, probe with the right.
    Hash,
    /// Nested loops probing a sorted index on the inner's (first) join key
    /// column. Only valid with a base-table inner and at least one key.
    IndexNestedLoop,
    /// Sort-based band join on an inequality predicate: both sides are
    /// sorted on the first range pair's columns, then each outer row binary
    /// searches the inner for its band boundary. Only valid with empty
    /// `keys` and at least one range (an equi-key join evaluates ranges as
    /// a residual filter on one of the keyed methods instead).
    Range,
}

impl JoinMethod {
    /// Short display name (as used in EXPLAIN output).
    pub fn name(self) -> &'static str {
        match self {
            JoinMethod::NestedLoop => "NL",
            JoinMethod::SortMerge => "SM",
            JoinMethod::Hash => "HASH",
            JoinMethod::IndexNestedLoop => "INL",
            JoinMethod::Range => "RANGE",
        }
    }
}

/// One node of a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scan query table `table_id`, applying `filters`.
    Scan {
        /// Position of the table in the query's `FROM` list.
        table_id: usize,
        /// Local predicates pushed into the scan.
        filters: Vec<CompiledFilter>,
    },
    /// Join two subplans on equality `keys` (`(left column, right column)`
    /// in query coordinates), optionally constrained by inequality
    /// `ranges`.
    Join {
        /// Algorithm.
        method: JoinMethod,
        /// Left (outer / build) input.
        left: Box<PlanNode>,
        /// Right (inner / probe) input.
        right: Box<PlanNode>,
        /// Equi-join keys.
        keys: Vec<(ColumnRef, ColumnRef)>,
        /// Inequality predicates `(left column, op, right column)` crossing
        /// the two inputs. With empty `keys` and [`JoinMethod::Range`] the
        /// first range drives the band probe and the rest filter its
        /// candidates; with non-empty `keys` every range is a residual
        /// filter on the keyed join's output (any method).
        ranges: Vec<(ColumnRef, CmpOp, ColumnRef)>,
    },
}

impl PlanNode {
    /// The query tables this subtree covers, ascending.
    pub fn tables(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out.sort_unstable();
        out
    }

    fn collect_tables(&self, out: &mut Vec<usize>) {
        match self {
            PlanNode::Scan { table_id, .. } => out.push(*table_id),
            PlanNode::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// The join order of this subtree: tables in the sequence a bottom-up
    /// left-deep execution touches them.
    pub fn join_order(&self) -> Vec<usize> {
        let mut out = Vec::new();
        match self {
            PlanNode::Scan { table_id, .. } => out.push(*table_id),
            PlanNode::Join { left, right, .. } => {
                out.extend(left.join_order());
                out.extend(right.join_order());
            }
        }
        out
    }

    /// Render the plan as an indented EXPLAIN-style tree.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::Scan { table_id, filters } => {
                out.push_str(&format!("{pad}Scan(R{table_id}"));
                if !filters.is_empty() {
                    out.push_str(&format!(", {} filter(s)", filters.len()));
                }
                out.push_str(")\n");
            }
            PlanNode::Join { method, left, right, keys, ranges } => {
                out.push_str(&format!("{pad}{}Join({} key(s)", method.name(), keys.len()));
                if !ranges.is_empty() {
                    out.push_str(&format!(", {} range(s)", ranges.len()));
                }
                out.push_str(")\n");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
        }
    }
}

/// What the plan returns to the client.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOutput {
    /// `COUNT(*)` of the join result.
    CountStar,
    /// All columns.
    Star,
    /// Specific query columns.
    Columns(Vec<ColumnRef>),
    /// `GROUP BY` on the given columns with a per-group `COUNT(*)`; the
    /// result carries the key columns plus a trailing `count` column,
    /// ordered by key.
    GroupCount(Vec<ColumnRef>),
}

/// A complete physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The operator tree.
    pub root: PlanNode,
    /// Output shape.
    pub output: PlanOutput,
    /// Final sort of the output rows (`(column, descending)` in query
    /// coordinates; columns must be present in the output).
    pub order_by: Vec<(ColumnRef, bool)>,
    /// Keep only the first `limit` output rows (after sorting).
    pub limit: Option<u64>,
}

impl QueryPlan {
    /// A plan with no output ordering or limit.
    pub fn new(root: PlanNode, output: PlanOutput) -> QueryPlan {
        QueryPlan { root, output, order_by: Vec::new(), limit: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(t: usize) -> PlanNode {
        PlanNode::Scan { table_id: t, filters: Vec::new() }
    }

    #[test]
    fn tables_and_join_order() {
        let plan = PlanNode::Join {
            method: JoinMethod::SortMerge,
            left: Box::new(PlanNode::Join {
                method: JoinMethod::NestedLoop,
                left: Box::new(scan(2)),
                right: Box::new(scan(0)),
                keys: vec![],
                ranges: vec![],
            }),
            right: Box::new(scan(1)),
            keys: vec![],
            ranges: vec![],
        };
        assert_eq!(plan.tables(), vec![0, 1, 2]);
        assert_eq!(plan.join_order(), vec![2, 0, 1]);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = PlanNode::Join {
            method: JoinMethod::Hash,
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            keys: vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))],
            ranges: vec![],
        };
        let text = plan.explain();
        assert!(text.contains("HASHJoin(1 key(s))"));
        assert!(text.contains("  Scan(R0)"));
        assert!(text.contains("  Scan(R1)"));
    }

    #[test]
    fn explain_renders_ranges() {
        let plan = PlanNode::Join {
            method: JoinMethod::Range,
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            keys: vec![],
            ranges: vec![(ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(1, 0))],
        };
        let text = plan.explain();
        assert!(text.contains("RANGEJoin(0 key(s), 1 range(s))"), "{text}");
    }

    #[test]
    fn method_names() {
        assert_eq!(JoinMethod::NestedLoop.name(), "NL");
        assert_eq!(JoinMethod::SortMerge.name(), "SM");
        assert_eq!(JoinMethod::Hash.name(), "HASH");
        assert_eq!(JoinMethod::IndexNestedLoop.name(), "INL");
        assert_eq!(JoinMethod::Range.name(), "RANGE");
    }
}
