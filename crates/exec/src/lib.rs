//! # els-exec
//!
//! A small Volcano-flavoured (but block-materializing) execution engine —
//! the stand-in for the Starburst runtime on which the paper's Section 8
//! measured elapsed query times.
//!
//! * [`chunk`] — intermediate results: a materialized table plus the
//!   provenance of each column (`(table, column)` of the original query).
//! * [`filter`] — compiled local predicates evaluated during scans.
//! * [`join`] — nested-loops, sort-merge, and hash join implementations
//!   (the paper's experiment used Nested Loops and Sort Merge; hash join is
//!   included for the extended plan-quality studies).
//! * [`plan`] — physical plan trees built by the optimizer.
//! * [`executor`] — plan interpretation with [`metrics`] collection
//!   (tuples, simulated page reads, comparisons, wall time), in one of two
//!   [`ExecMode`]s: the tuple-at-a-time reference oracle, or
//! * [`vectorized`] — typed whole-column kernels over selection vectors
//!   with late materialization, a radix-partitioned parallel hash join,
//!   and fused `COUNT(*)` roots (the default mode; bit-identical results
//!   and counters).
//! * [`scheduler`] — the work-stealing morsel scheduler every parallel
//!   operator runs on (the only library module allowed to spawn threads).
//!
//! The engine executes *exactly* the predicate set it is given: join
//! predicates become join keys as soon as both sides are available, local
//! predicates are pushed into scans, and intra-table column equalities are
//! applied at the scan too. Correctness of every join method is tested
//! against a brute-force cartesian evaluator.

// Clippy-level twin of the els-lint panic-freedom and metrics-only-io
// passes (scripts/check.sh runs clippy with `-D warnings`, so these warn
// levels are bans on non-test library code).
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)
)]

pub mod buffer;
pub mod chunk;
pub mod error;
pub mod executor;
pub mod filter;
pub mod index;
pub mod join;
pub mod metrics;
pub mod plan;
pub mod scheduler;
pub mod timing;
pub mod vectorized;

pub use buffer::{BufferPool, PageIo};
pub use chunk::Chunk;
pub use error::{check_rowid_range, ExecError, ExecResult};
pub use executor::{
    execute_plan, execute_plan_buffered, execute_plan_buffered_observed_with,
    execute_plan_buffered_with, execute_plan_observed, execute_plan_observed_with,
    execute_plan_with, ExecMode, ExecOutput, Observations, PlanEvaluator, RowOracle,
    VectorizedEvaluator,
};
pub use metrics::{
    json_escape, EngineCounters, EngineCountersSnapshot, ExecMetrics, MetricsRegistry,
    QErrorHistogram, ServerCounters, ServerCountersSnapshot,
};
pub use plan::{JoinMethod, PlanNode, PlanOutput, QueryPlan};
pub use scheduler::RunStats;
pub use vectorized::{radix_partitions, MAX_RADIX_PARTITIONS, MORSEL_ROWS, PARALLEL_MIN_ROWS};
