//! Numeric-cast and float-equality discipline for the estimator and
//! executor crates.
//!
//! Cardinality estimation is arithmetic all the way down — selectivities,
//! bucket counts, row ids — and the places it goes wrong quietly are raw
//! `as` casts (truncation wraps, `f64 as u64` saturates since Rust 1.45)
//! and exact float comparison. This pass classifies the casts the token
//! stream can see and bans the rest of the workspace from re-growing them:
//!
//! * **narrowing `as`** (rule A): any `as` to a type that cannot hold a
//!   `usize`/`i64`/`f64` (`u8 u16 u32 i8 i16 i32 f32`) in els-core or
//!   els-exec. Literal casts (`0xFF as u8`) are provably lossless and
//!   exempt. Sanctioned narrowings carry a suppression naming the bound
//!   that makes them safe — `els_exec::error::rowid` is the canonical one.
//! * **rounding casts** (rule B): `.ceil()`/`.floor()`/`.round()`/
//!   `.trunc()` immediately cast to a wide integer. Saturation at
//!   `u64::MAX` silently turns an estimator overflow into a plausible
//!   huge number; each site must argue its input is bounded.
//! * **float literal equality** (rule C): `==`/`!=` against a float
//!   literal anywhere in els-core except the `float` module, whose
//!   `exactly_zero`/`exactly_one`/`approx_eq` helpers are the sanctioned
//!   spellings.
//! * **literal-default fallbacks** (rule D): `.unwrap_or(<literal>)` in
//!   els-core. A silent `unwrap_or(1.0)` on a missing statistic is how
//!   drifted stats become confident wrong estimates; each one is either a
//!   typed `ElsError` or a suppression explaining why the default is
//!   principled.

use crate::lexer::TokenKind;
use crate::passes::{Lint, Violation};
use crate::symbols::ParsedFile;

/// Types a raw `as` may not target without justification (rule A).
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Wide integer targets that make a rounding cast saturating (rule B).
const WIDE_INT_TYPES: &[&str] = &["u64", "i64", "u128", "i128", "usize", "isize"];

/// Rounding methods whose result is habitually cast (rule B).
const ROUNDING_METHODS: &[&str] = &["ceil", "floor", "round", "trunc"];

/// The sanctioned home of exact float comparison (rule C exemption).
const FLOAT_HELPER_FILE: &str = "crates/core/src/float.rs";

fn in_scope(pf: &ParsedFile) -> bool {
    pf.source.rel_path.starts_with("crates/core/src/")
        || pf.source.rel_path.starts_with("crates/exec/src/")
}

fn is_core(pf: &ParsedFile) -> bool {
    pf.source.rel_path.starts_with("crates/core/src/")
}

/// Run all four rules over one file's non-test code.
pub fn check_file(pf: &ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if !in_scope(pf) {
        return out;
    }
    for ci in 0..pf.code.len() {
        let Some(tok) = pf.tok(ci) else { continue };
        let mut push = |message: String| {
            out.push(Violation {
                lint: Lint::NumericDiscipline,
                file: pf.source.rel_path.clone(),
                line: tok.line,
                col: tok.col,
                message,
                suppressed: false,
            });
        };
        match tok.kind {
            TokenKind::Ident if tok.text == "as" => {
                let target = pf.text(ci + 1);
                let src_is_literal =
                    ci > 0 && pf.tok(ci - 1).is_some_and(|t| t.kind == TokenKind::Number);
                // Rule A: narrowing cast of a non-literal value.
                if NARROW_TYPES.contains(&target) && !src_is_literal {
                    push(format!(
                        "narrowing `as {target}` cast: wraps on overflow; use a checked \
                         conversion (`check_rowid_range` + `rowid` for row ids) or suppress \
                         with the bound that makes it lossless"
                    ));
                }
                // Rule B: `.ceil() as u64` and friends.
                if WIDE_INT_TYPES.contains(&target)
                    && ci >= 3
                    && pf.is_punct(ci - 1, ')')
                    && pf.is_punct(ci - 2, '(')
                    && pf.tok(ci - 3).is_some_and(|t| ROUNDING_METHODS.contains(&t.text.as_str()))
                {
                    push(format!(
                        "rounding cast `.{}() as {target}` saturates at {target}::MAX: an \
                         estimator overflow becomes a plausible huge number; suppress with \
                         the bound on the input",
                        pf.text(ci - 3)
                    ));
                }
            }
            // Rule C: `== 1.0` / `1.0 !=` — exact float-literal equality.
            TokenKind::Number if tok.text.contains('.') => {
                if !is_core(pf) || pf.source.rel_path == FLOAT_HELPER_FILE {
                    continue;
                }
                let before = ci >= 2
                    && pf.is_punct(ci - 1, '=')
                    && (pf.is_punct(ci - 2, '=') || pf.is_punct(ci - 2, '!'));
                let after = pf.is_punct(ci + 2, '=')
                    && (pf.is_punct(ci + 1, '=') || pf.is_punct(ci + 1, '!'));
                if before || after {
                    push(format!(
                        "exact float comparison against `{}`: use \
                         els_core::float::{{exactly_zero, exactly_one, approx_eq}}",
                        tok.text
                    ));
                }
            }
            // Rule D: `.unwrap_or(<number literal>)` in els-core.
            TokenKind::Ident if tok.text == "unwrap_or" => {
                if !is_core(pf) || ci == 0 || !pf.is_punct(ci - 1, '.') || !pf.is_punct(ci + 1, '(')
                {
                    continue;
                }
                if pf.tok(ci + 2).is_some_and(|t| t.kind == TokenKind::Number) {
                    push(format!(
                        "silent literal default `.unwrap_or({})`: a missing statistic \
                         deserves a typed ElsError (DegenerateStats) or a suppression \
                         arguing the default is principled",
                        pf.text(ci + 2)
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(&ParsedFile::new("els-core", SourceFile::parse(path, src)))
    }

    #[test]
    fn narrowing_cast_is_flagged_and_literal_cast_is_not() {
        let v =
            check("crates/exec/src/m.rs", "fn f(i: usize) -> u32 { let _ = 0xFF as u8; i as u32 }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("narrowing `as u32`"));
    }

    #[test]
    fn widening_cast_is_fine() {
        let v = check("crates/core/src/m.rs", "fn f(i: u32) -> f64 { i as f64 }");
        assert_eq!(v, vec![]);
    }

    #[test]
    fn rounding_cast_to_wide_int_is_flagged() {
        let v = check("crates/exec/src/m.rs", "fn f(x: f64) -> u64 { x.ceil() as u64 }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("rounding cast `.ceil() as u64`"));
        // `.ceil() as f64` round-trips losslessly: not flagged.
        let ok = check("crates/core/src/m.rs", "fn f(x: f64) -> f64 { x.ceil() as f64 }");
        assert_eq!(ok, vec![]);
    }

    #[test]
    fn float_literal_equality_is_banned_outside_the_float_module() {
        let v = check("crates/core/src/m.rs", "fn f(x: f64) -> bool { x == 0.0 || 1.0 != x }");
        assert_eq!(v.len(), 2, "{v:?}");
        let ok = check(FLOAT_HELPER_FILE, "pub fn exactly_zero(x: f64) -> bool { x == 0.0 }");
        assert_eq!(ok, vec![]);
        // `<=`/`>=` and assignment are not equality.
        let ok = check("crates/core/src/m.rs", "fn f(x: f64) -> bool { let y = 1.0; x <= 2.5 }");
        assert_eq!(ok, vec![]);
        // exec may compare floats (selection kernels do) — core-only rule.
        let ok = check("crates/exec/src/m.rs", "fn f(x: f64) -> bool { x == 0.0 }");
        assert_eq!(ok, vec![]);
    }

    #[test]
    fn literal_unwrap_or_is_flagged_in_core_only() {
        let v = check("crates/core/src/m.rs", "fn f(o: Option<f64>) -> f64 { o.unwrap_or(1.0) }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("unwrap_or(1.0)"));
        // Variable defaults carry intent; not flagged.
        let ok =
            check("crates/core/src/m.rs", "fn f(o: Option<f64>, d: f64) -> f64 { o.unwrap_or(d) }");
        assert_eq!(ok, vec![]);
        let ok = check("crates/exec/src/m.rs", "fn f(o: Option<u64>) -> u64 { o.unwrap_or(0) }");
        assert_eq!(ok, vec![]);
    }

    #[test]
    fn out_of_scope_crates_are_untouched() {
        let v = check("crates/sql/src/m.rs", "fn f(i: usize) -> u32 { i as u32 }");
        assert_eq!(v, vec![]);
    }

    #[test]
    fn test_code_is_invisible() {
        let v = check(
            "crates/core/src/m.rs",
            "#[cfg(test)]\nmod tests { fn f(i: usize) -> u32 { i as u32 } }",
        );
        assert_eq!(v, vec![]);
    }
}
