#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it ships.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Static analysis: the in-workspace linter (crates/lint) enforces
# panic-freedom, determinism, metrics-only I/O, atomics discipline, and
# crate layering against the ratchet baseline in lint-baseline.json. Its
# report includes the per-lint current/baseline/suppressed delta table; a
# non-zero exit means a new violation, a malformed/unused suppression, or
# a layering break. To re-ratchet after burning down baselined debt:
#   ELS_LINT_BASELINE_UPDATE=1 cargo run -q -p els-lint -- --baseline-update
cargo run --release -q -p els-lint

cargo fmt --check

# Bench smoke: the kernel bench on a scaled-down workload. It exits
# non-zero and prints REGRESSION if any vectorized result diverges from
# the row-at-a-time oracle, ACCURACY REGRESSION if the ELS median
# q-error on the Section 8 chain exceeds its pinned threshold, or
# BAKE-OFF REGRESSION if the UES contender under-estimates any smoke
# query (it claims to be a guaranteed upper bound) or the bake-off's ELS
# median q-error degrades past the same threshold.
smoke_out=$(cargo run --release -q -p els-bench --bin bench_exec_kernels -- --smoke)
echo "$smoke_out"
if grep -q "REGRESSION" <<<"$smoke_out"; then
  echo "check.sh: bench smoke found a regression" >&2
  exit 1
fi

# Band-join smoke: inequality-join estimation accuracy over uniform,
# Zipf, and correlated-offset key data. Exits non-zero and prints a
# REGRESSION line if the ELS median q-error on band joins exceeds its
# pinned limit, the UES contender under-estimates any band join (it
# claims to be an upper bound — a band join must fall back to the cross
# product), any contender's executed count diverges, or no query runs
# through the RANGE band-join operator at all.
band_out=$(cargo run --release -q -p els-bench --bin bench_band_join -- --smoke)
echo "$band_out"
if grep -q "REGRESSION" <<<"$band_out"; then
  echo "check.sh: band-join smoke found a regression" >&2
  exit 1
fi

# Server traffic smoke: closed-loop clients, an overload storm, and a
# shed probe against the TCP front door over loopback. Exits non-zero
# and prints OVERLOAD REGRESSION if any client hangs, any storm attempt
# ends untyped, saturation yields zero typed Overloaded rejections, or
# cached-plan-only shedding breaks its serve-cached/refuse-uncached
# contract.
server_out=$(cargo run --release -q -p els-bench --bin bench_server_traffic -- --smoke)
echo "$server_out"
if grep -q "REGRESSION" <<<"$server_out"; then
  echo "check.sh: server traffic smoke found a regression" >&2
  exit 1
fi

echo "check.sh: all gates passed"
