//! Bounded admission queue: the backpressure primitive.
//!
//! A `Mutex<VecDeque>` + `Condvar` channel with a hard capacity.
//! [`AdmissionQueue::try_push`] never blocks — a full queue hands the item
//! straight back so the acceptor can reject with a typed
//! [`crate::ServerError::Overloaded`] instead of queueing unboundedly.
//! [`AdmissionQueue::pop`] blocks with a timeout so worker threads can
//! re-check the shutdown flag on a fixed cadence.
//!
//! The queue's live depth doubles as the load signal: the connection
//! handler flips to cached-plan-only (shed) mode when
//! [`AdmissionQueue::depth`] reaches the configured watermark — clients
//! waiting for a worker is exactly the condition under which spending
//! optimizer time on never-seen queries stops being affordable.
//!
//! Poisoned locks recover (the engine-wide policy, see `els_core::sync`):
//! the state is a plain deque + flag with no partial-update window.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use els_core::sync::{lock_recovering, wait_timeout_recovering};

/// What a blocking pop observed.
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue empty; caller re-checks shutdown
    /// and typically retries.
    Empty,
    /// The queue was closed and drained — the worker should exit.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with non-blocking admission and timed pops.
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` waiting items (minimum 1).
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admit `item` if there is room; hand it back (`Err`) when the queue
    /// is full or closed. Never blocks — this is the admission-control
    /// decision point.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = lock_recovering(&self.state);
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, waiting up to `timeout` for an item.
    pub fn pop(&self, timeout: Duration) -> Popped<T> {
        let mut state = lock_recovering(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Popped::Item(item);
            }
            if state.closed {
                return Popped::Closed;
            }
            let (next, timed_out) = wait_timeout_recovering(&self.ready, state, timeout);
            state = next;
            if timed_out {
                return match state.items.pop_front() {
                    Some(item) => Popped::Item(item),
                    None if state.closed => Popped::Closed,
                    None => Popped::Empty,
                };
            }
        }
    }

    /// Number of items currently waiting — the shed-mode load signal.
    pub fn depth(&self) -> usize {
        lock_recovering(&self.state).items.len()
    }

    /// Close the queue: future pushes fail, waiting poppers drain what is
    /// left and then observe [`Popped::Closed`].
    pub fn close(&self) {
        lock_recovering(&self.state).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_push_hands_back_on_full() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(3), "full queue must reject, not block");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(Duration::from_millis(1)), Popped::Item(1));
        assert_eq!(q.try_push(3), Ok(()), "pop frees a slot");
    }

    #[test]
    fn pop_times_out_empty_and_drains_after_close() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4);
        assert_eq!(q.pop(Duration::from_millis(1)), Popped::Empty);
        q.try_push(7).expect("room");
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue admits nothing");
        assert_eq!(q.pop(Duration::from_millis(1)), Popped::Item(7), "drain continues");
        assert_eq!(q.pop(Duration::from_millis(1)), Popped::Closed);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(2));
    }
}
