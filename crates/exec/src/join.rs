//! Join algorithms: nested loops, sort-merge, and hash.
//!
//! The paper's Section 8 plans used Nested Loops and Sort Merge; hash join
//! is provided for the extended plan-quality experiments. All three are
//! equi-joins on one or more key pairs, with SQL NULL semantics (NULL keys
//! never match). Each algorithm produces the same result set — a property
//! test checks all three against a brute-force cartesian evaluator.

use std::collections::HashMap;

use els_core::predicate::CmpOp;
use els_core::ColumnRef;
use els_storage::Value;

use crate::chunk::Chunk;
use crate::error::{ExecError, ExecResult};
use crate::metrics::ExecMetrics;

/// Resolve key columns: `keys` are `(left column, right column)` pairs in
/// query coordinates; returns their positions in the two chunks.
pub(crate) fn key_positions(
    left: &Chunk,
    right: &Chunk,
    keys: &[(ColumnRef, ColumnRef)],
) -> ExecResult<Vec<(usize, usize)>> {
    keys.iter()
        .map(|&(l, r)| {
            let lp = left.position_of(l).ok_or(ExecError::ColumnNotInSchema(l))?;
            let rp = right.position_of(r).ok_or(ExecError::ColumnNotInSchema(r))?;
            Ok((lp, rp))
        })
        .collect()
}

/// Extract one row's key values; `None` when any component is NULL.
pub(crate) fn key_values(
    chunk: &Chunk,
    positions: &[usize],
    row: usize,
) -> ExecResult<Option<Vec<Value>>> {
    let mut vals = Vec::with_capacity(positions.len());
    for &p in positions {
        let v = chunk.data.column(p)?.get(row)?;
        if v.is_null() {
            return Ok(None);
        }
        vals.push(v);
    }
    Ok(Some(vals))
}

/// A hashable normalization of a key value.
///
/// Integers hash **exactly** as `i64` — the earlier encoding collapsed
/// `Int` to its `f64` image, which collides distinct integers beyond 2⁵³
/// (e.g. `i64::MAX` and `i64::MAX - 1`). To keep `Int(2)` and `Float(2.0)`
/// in the same bucket (they are equal under [`Value::sql_eq`]), a float
/// whose value is *bit-exactly* the image of some `i64` normalizes to that
/// integer; every other float keeps its own bit pattern. `-0.0` stays a
/// float: `sql_eq` compares floats with `total_cmp`, under which `-0.0`
/// equals neither `0.0` nor `Int(0)`.
///
/// Mixed-type equality beyond 2⁵³ inherits `sql_eq`'s non-transitivity
/// (`Float(2⁵³)` matches only the one `i64` it is the exact image of),
/// which is also how the sort-merge comparator behaves — Int/Int exactness
/// is the property that matters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum HashKey {
    Int(i64),
    Float(u64),
    Str(String),
}

pub(crate) fn hash_key(v: &Value) -> Option<HashKey> {
    match v {
        Value::Null => None,
        Value::Int(x) => Some(HashKey::Int(*x)),
        Value::Float(x) => Some(normalize_float_key(*x)),
        Value::Str(s) => Some(HashKey::Str(s.clone())),
    }
}

/// Lexicographic total order on composite keys (shared by the row-path and
/// vectorized sort-merge implementations, which must sort identically).
pub(crate) fn cmp_key_slices(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Comparisons charged for sorting `n` keys: `n log₂ n`. The real sort
/// performs them; counting inside the comparator would double-count with
/// the merge phase.
pub(crate) fn sort_charge(n: usize) -> u64 {
    if n > 1 {
        (n as f64 * (n as f64).log2()) as u64
    } else {
        0
    }
}

/// Map a float to the integer key it would `sql_eq`, when one exists.
fn normalize_float_key(x: f64) -> HashKey {
    // `x as i64` saturates; the round-trip check rejects saturated values,
    // NaN/inf (fract fails), fractional floats, and -0.0 (sign bit differs
    // from `0_i64 as f64`).
    let candidate = x as i64;
    if (candidate as f64).to_bits() == x.to_bits() {
        HashKey::Int(candidate)
    } else {
        HashKey::Float(x.to_bits())
    }
}

/// Nested-loops join: for every outer (left) tuple, rescan the inner
/// (right) side. The simulated cost model charges the inner table's pages
/// once per outer tuple — the rescan cost that makes this method disastrous
/// with a large unfiltered inner, which is precisely what a misled optimizer
/// picks in the paper's experiment.
pub fn nested_loop_join(
    left: &Chunk,
    right: &Chunk,
    keys: &[(ColumnRef, ColumnRef)],
    metrics: &mut ExecMetrics,
) -> ExecResult<Chunk> {
    let pos = key_positions(left, right, keys)?;
    let lpos: Vec<usize> = pos.iter().map(|p| p.0).collect();
    let mut rows: Vec<(usize, usize)> = Vec::new();
    let inner_pages = right.data.num_pages() as u64;
    for l in 0..left.num_rows() {
        metrics.pages_read += inner_pages;
        let lkey = key_values(left, &lpos, l)?;
        for r in 0..right.num_rows() {
            metrics.comparisons += pos.len().max(1) as u64;
            let matched = match &lkey {
                None => false,
                Some(lvals) => {
                    let mut ok = true;
                    for (k, &(_, rp)) in pos.iter().enumerate() {
                        let rv = right.data.column(rp)?.get(r)?;
                        if !lvals[k].sql_eq(&rv) {
                            ok = false;
                            break;
                        }
                    }
                    // No keys: cartesian product.
                    ok
                }
            };
            // A keyless nested loop is a cartesian product; `lkey` is
            // Some(vec![]) then, so `matched` is true above.
            if matched {
                rows.push((l, r));
            }
        }
    }
    metrics.tuples_emitted += rows.len() as u64;
    Chunk::join_rows(left, right, &rows)
}

/// Nested loops with a *base-table inner*: the inner relation is rescanned
/// from storage for every outer tuple, applying its local filters during
/// each rescan — System R's nested-loops access pattern when no index
/// exists, and the cost structure of the paper's Starburst experiment
/// (an unfiltered giant inner is charged its full page count per outer
/// tuple). Produces exactly the same rows as filtering the inner once and
/// calling [`nested_loop_join`].
pub fn nested_loop_rescan_join(
    left: &Chunk,
    inner_table_id: usize,
    inner: &els_storage::Table,
    inner_filters: &[crate::filter::CompiledFilter],
    keys: &[(ColumnRef, ColumnRef)],
    metrics: &mut ExecMetrics,
    io: &mut crate::buffer::PageIo,
) -> ExecResult<Chunk> {
    // Build a one-row-free view of the inner for provenance-aware filter
    // evaluation. The chunk borrows nothing, so clone the table once; the
    // rescan below iterates row indices, not cloned data.
    let inner_chunk = Chunk::from_base_table(inner_table_id, inner.clone());
    let pos = key_positions(left, &inner_chunk, keys)?;
    let lpos: Vec<usize> = pos.iter().map(|p| p.0).collect();
    // Resolve filter columns once for the whole rescan loop, not per row.
    let bound_filters = crate::filter::bind_filters_to_chunk(inner_filters, &inner_chunk)?;
    let inner_pages = inner.num_pages() as u64;
    let mut rows: Vec<(usize, usize)> = Vec::new();
    for l in 0..left.num_rows() {
        // One full rescan of the stored inner per outer tuple (the buffer
        // pool, when present, decides how much of it is physical).
        io.scan_table(inner_table_id, inner_pages, metrics);
        metrics.tuples_scanned += inner.num_rows() as u64;
        let lkey = key_values(left, &lpos, l)?;
        'inner: for r in 0..inner.num_rows() {
            // Local filters are evaluated during the rescan.
            for f in &bound_filters {
                metrics.comparisons += 1;
                if !f.matches(&inner_chunk.data, r)? {
                    continue 'inner;
                }
            }
            metrics.comparisons += pos.len().max(1) as u64;
            let matched = match &lkey {
                None => false,
                Some(lvals) => {
                    let mut ok = true;
                    for (k, &(_, rp)) in pos.iter().enumerate() {
                        let rv = inner_chunk.data.column(rp)?.get(r)?;
                        if !lvals[k].sql_eq(&rv) {
                            ok = false;
                            break;
                        }
                    }
                    ok
                }
            };
            if matched {
                rows.push((l, r));
            }
        }
    }
    metrics.tuples_emitted += rows.len() as u64;
    Chunk::join_rows(left, &inner_chunk, &rows)
}

/// Sort-merge join: sort both inputs on their key columns, then merge,
/// emitting the cross product of each pair of equal-key runs.
pub fn sort_merge_join(
    left: &Chunk,
    right: &Chunk,
    keys: &[(ColumnRef, ColumnRef)],
    metrics: &mut ExecMetrics,
) -> ExecResult<Chunk> {
    if keys.is_empty() {
        // Degenerate to a nested-loops cartesian product.
        return nested_loop_join(left, right, keys, metrics);
    }
    let pos = key_positions(left, right, keys)?;
    let lpos: Vec<usize> = pos.iter().map(|p| p.0).collect();
    let rpos: Vec<usize> = pos.iter().map(|p| p.1).collect();

    // Materialize non-NULL keys with their row ids, then sort.
    let mut lrows: Vec<(Vec<Value>, usize)> = Vec::with_capacity(left.num_rows());
    for row in 0..left.num_rows() {
        if let Some(k) = key_values(left, &lpos, row)? {
            lrows.push((k, row));
        }
    }
    let mut rrows: Vec<(Vec<Value>, usize)> = Vec::with_capacity(right.num_rows());
    for row in 0..right.num_rows() {
        if let Some(k) = key_values(right, &rpos, row)? {
            rrows.push((k, row));
        }
    }
    metrics.rows_sorted += (lrows.len() + rrows.len()) as u64;
    let cmp_keys = cmp_key_slices;
    lrows.sort_by(|a, b| cmp_keys(&a.0, &b.0));
    rrows.sort_by(|a, b| cmp_keys(&a.0, &b.0));
    metrics.comparisons += sort_charge(lrows.len()) + sort_charge(rrows.len());

    let mut rows: Vec<(usize, usize)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lrows.len() && j < rrows.len() {
        metrics.comparisons += 1;
        match cmp_keys(&lrows[i].0, &rrows[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the equal runs on both sides.
                let mut ie = i + 1;
                while ie < lrows.len() && cmp_keys(&lrows[ie].0, &lrows[i].0).is_eq() {
                    ie += 1;
                }
                let mut je = j + 1;
                while je < rrows.len() && cmp_keys(&rrows[je].0, &rrows[j].0).is_eq() {
                    je += 1;
                }
                for lrow in &lrows[i..ie] {
                    for rrow in &rrows[j..je] {
                        rows.push((lrow.1, rrow.1));
                    }
                }
                i = ie;
                j = je;
            }
        }
    }
    metrics.tuples_emitted += rows.len() as u64;
    Chunk::join_rows(left, right, &rows)
}

/// Hash join: build a table on the left input, probe with the right.
pub fn hash_join(
    left: &Chunk,
    right: &Chunk,
    keys: &[(ColumnRef, ColumnRef)],
    metrics: &mut ExecMetrics,
) -> ExecResult<Chunk> {
    if keys.is_empty() {
        return nested_loop_join(left, right, keys, metrics);
    }
    let pos = key_positions(left, right, keys)?;
    let lpos: Vec<usize> = pos.iter().map(|p| p.0).collect();
    let rpos: Vec<usize> = pos.iter().map(|p| p.1).collect();

    let mut table: HashMap<Vec<HashKey>, Vec<usize>> = HashMap::new();
    for row in 0..left.num_rows() {
        if let Some(vals) = key_values(left, &lpos, row)? {
            let key: Option<Vec<HashKey>> = vals.iter().map(hash_key).collect();
            if let Some(key) = key {
                table.entry(key).or_default().push(row);
            }
        }
    }
    let mut rows: Vec<(usize, usize)> = Vec::new();
    for row in 0..right.num_rows() {
        metrics.hash_probes += 1;
        if let Some(vals) = key_values(right, &rpos, row)? {
            let key: Option<Vec<HashKey>> = vals.iter().map(hash_key).collect();
            if let Some(key) = key {
                if let Some(ls) = table.get(&key) {
                    for &l in ls {
                        rows.push((l, row));
                    }
                }
            }
        }
    }
    // Keep output ordering deterministic (left-major) to match the other
    // algorithms' natural order in tests.
    rows.sort_unstable();
    metrics.tuples_emitted += rows.len() as u64;
    Chunk::join_rows(left, right, &rows)
}

/// SQL truth of `lv op rv` for one candidate join pair: NULL on either
/// side never matches; non-NULL values compare under [`Value::total_cmp`],
/// which agrees with SQL comparison on same-typed operands and keeps
/// `Int`/`Float` cross-type comparisons consistent with the filter layer.
pub(crate) fn range_pair_matches(lv: &Value, rv: &Value, op: CmpOp) -> bool {
    if lv.is_null() || rv.is_null() {
        return false;
    }
    let ord = lv.total_cmp(rv);
    match op {
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
    }
}

/// Comparisons charged per outer row for the band probe's binary search
/// over `n` sorted inner keys: `ceil(log₂ n) + 1`. A fixed function of the
/// input size (not of the data), so the row and vectorized operators — and
/// the serial and morsel-parallel schedules — charge identically.
pub(crate) fn probe_charge(n: usize) -> u64 {
    let n = n.max(1);
    let ceil_log2 = if n.is_power_of_two() { n.ilog2() } else { n.ilog2() + 1 };
    u64::from(ceil_log2) + 1
}

/// The band probe shared by the row and vectorized range-join operators:
/// both inputs are non-NULL `(key, logical row)` entries sorted ascending
/// by key; every left entry binary-searches the right side for its band
/// boundary and emits each `(left row, right row)` pair with
/// `left key op right key`. Pure — the caller charges
/// `len(left) · probe_charge(len(right))` comparisons and sorts the result.
pub(crate) fn band_probe(
    lrows: &[(Value, u32)],
    rrows: &[(Value, u32)],
    op: CmpOp,
) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for (lv, lj) in lrows {
        let matches = match op {
            // Matches form a suffix (right keys above the boundary) ...
            CmpOp::Lt => {
                &rrows[rrows
                    .partition_point(|(rv, _)| rv.total_cmp(lv) != std::cmp::Ordering::Greater)..]
            }
            CmpOp::Le => {
                &rrows[rrows
                    .partition_point(|(rv, _)| rv.total_cmp(lv) == std::cmp::Ordering::Less)..]
            }
            // ... or a prefix (right keys below it).
            CmpOp::Gt => {
                &rrows[..rrows
                    .partition_point(|(rv, _)| rv.total_cmp(lv) == std::cmp::Ordering::Less)]
            }
            CmpOp::Ge => {
                &rrows[..rrows
                    .partition_point(|(rv, _)| rv.total_cmp(lv) != std::cmp::Ordering::Greater)]
            }
            CmpOp::Eq | CmpOp::Ne => unreachable!("range operators validated by the join operator"),
        };
        for &(_, rj) in matches {
            pairs.push((*lj, rj));
        }
    }
    pairs
}

/// Sort-based band join on inequality `ranges` (no equi-keys): sort both
/// sides once on the first range's columns, binary-search each outer row's
/// band boundary in the sorted inner, then filter the candidates through
/// any residual ranges. NULL keys never match. Charges `rows_sorted` for
/// both sides, `n log n` sort comparisons, [`probe_charge`] per outer key,
/// one comparison per candidate per residual range, and counts every
/// output row in both `tuples_emitted` and `range_join_rows`.
pub fn range_join(
    left: &Chunk,
    right: &Chunk,
    ranges: &[(ColumnRef, CmpOp, ColumnRef)],
    metrics: &mut ExecMetrics,
) -> ExecResult<Chunk> {
    let Some(&(lc, op, rc)) = ranges.first() else {
        return Err(ExecError::InvalidPlan("range join requires at least one range".into()));
    };
    if !op.is_range() {
        return Err(ExecError::InvalidPlan(format!("`{op}` cannot drive a range join")));
    }
    crate::error::check_rowid_range(left.num_rows())?;
    crate::error::check_rowid_range(right.num_rows())?;
    let (lp, rp) = (left.require(lc)?, right.require(rc)?);
    let gather = |chunk: &Chunk, pos: usize| -> ExecResult<Vec<(Value, u32)>> {
        let mut out = Vec::with_capacity(chunk.num_rows());
        for row in 0..chunk.num_rows() {
            let v = chunk.data.column(pos)?.get(row)?;
            if !v.is_null() {
                out.push((v, crate::error::rowid(row)));
            }
        }
        Ok(out)
    };
    let mut lrows = gather(left, lp)?;
    let mut rrows = gather(right, rp)?;
    metrics.rows_sorted += (lrows.len() + rrows.len()) as u64;
    lrows.sort_by(|a, b| a.0.total_cmp(&b.0));
    rrows.sort_by(|a, b| a.0.total_cmp(&b.0));
    metrics.comparisons += sort_charge(lrows.len()) + sort_charge(rrows.len());
    metrics.comparisons += lrows.len() as u64 * probe_charge(rrows.len());
    let mut pairs = band_probe(&lrows, &rrows, op);
    if ranges.len() > 1 {
        // Residual ranges filter the band's candidates; charge one
        // comparison per candidate per residual regardless of
        // short-circuiting, so the charge is schedule-independent.
        metrics.comparisons += pairs.len() as u64 * (ranges.len() - 1) as u64;
        let extras: Vec<(usize, CmpOp, usize)> = ranges[1..]
            .iter()
            .map(|&(l, o, r)| Ok((left.require(l)?, o, right.require(r)?)))
            .collect::<ExecResult<_>>()?;
        let mut kept = Vec::with_capacity(pairs.len());
        'pairs: for (lj, rj) in pairs {
            for &(le, o, re) in &extras {
                let lv = left.data.column(le)?.get(lj as usize)?;
                let rv = right.data.column(re)?.get(rj as usize)?;
                if !range_pair_matches(&lv, &rv, o) {
                    continue 'pairs;
                }
            }
            kept.push((lj, rj));
        }
        pairs = kept;
    }
    pairs.sort_unstable();
    metrics.tuples_emitted += pairs.len() as u64;
    metrics.range_join_rows += pairs.len() as u64;
    let rows: Vec<(usize, usize)> = pairs.iter().map(|&(l, r)| (l as usize, r as usize)).collect();
    Chunk::join_rows(left, right, &rows)
}

/// Residual inequality filter for keyed joins: keep the output rows of an
/// equi-join whose `ranges` all hold (both columns resolve in the joined
/// chunk, so range orientation does not matter here). Charges one
/// comparison per input row per range — the same charge the vectorized
/// pair-list filter applies — and passes the chunk through untouched when
/// `ranges` is empty.
pub fn apply_join_ranges(
    chunk: Chunk,
    ranges: &[(ColumnRef, CmpOp, ColumnRef)],
    metrics: &mut ExecMetrics,
) -> ExecResult<Chunk> {
    if ranges.is_empty() {
        return Ok(chunk);
    }
    let pos: Vec<(usize, CmpOp, usize)> = ranges
        .iter()
        .map(|&(l, o, r)| Ok((chunk.require(l)?, o, chunk.require(r)?)))
        .collect::<ExecResult<_>>()?;
    metrics.comparisons += chunk.num_rows() as u64 * ranges.len() as u64;
    let mut keep = Vec::new();
    'rows: for row in 0..chunk.num_rows() {
        for &(lp, o, rp) in &pos {
            let lv = chunk.data.column(lp)?.get(row)?;
            let rv = chunk.data.column(rp)?.get(row)?;
            if !range_pair_matches(&lv, &rv, o) {
                continue 'rows;
            }
        }
        keep.push(row);
    }
    if keep.len() == chunk.num_rows() {
        return Ok(chunk);
    }
    chunk.filter_rows(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::{DataType, Table};

    fn chunk(table_id: usize, values: &[Option<i64>]) -> Chunk {
        let mut t = Table::empty("t", &[("k", DataType::Int)]);
        for v in values {
            t.push_row(vec![v.map_or(Value::Null, Value::Int)]).unwrap();
        }
        Chunk::from_base_table(table_id, t)
    }

    fn keys() -> Vec<(ColumnRef, ColumnRef)> {
        vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))]
    }

    /// Brute-force reference join.
    fn reference(left: &Chunk, right: &Chunk) -> Vec<(Value, Value)> {
        let mut out = Vec::new();
        for l in 0..left.num_rows() {
            let lv = left.data.column(0).unwrap().get(l).unwrap();
            for r in 0..right.num_rows() {
                let rv = right.data.column(0).unwrap().get(r).unwrap();
                if lv.sql_eq(&rv) {
                    out.push((lv.clone(), rv));
                }
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    fn result_pairs(c: &Chunk) -> Vec<(Value, Value)> {
        let mut out: Vec<(Value, Value)> = (0..c.num_rows())
            .map(|r| {
                let row = c.data.row(r).unwrap();
                (row[0].clone(), row[1].clone())
            })
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    fn all_methods(
        left: &Chunk,
        right: &Chunk,
        ks: &[(ColumnRef, ColumnRef)],
    ) -> Vec<(&'static str, Chunk)> {
        let mut m = ExecMetrics::default();
        vec![
            ("nl", nested_loop_join(left, right, ks, &mut m).unwrap()),
            ("sm", sort_merge_join(left, right, ks, &mut m).unwrap()),
            ("hash", hash_join(left, right, ks, &mut m).unwrap()),
        ]
    }

    #[test]
    fn all_methods_agree_with_reference() {
        let l = chunk(0, &[Some(1), Some(2), Some(2), Some(3), None]);
        let r = chunk(1, &[Some(2), Some(2), Some(3), Some(4), None]);
        let expect = reference(&l, &r);
        assert_eq!(expect.len(), 5); // 2x2 for key 2, 1 for key 3.
        for (name, out) in all_methods(&l, &r, &keys()) {
            assert_eq!(result_pairs(&out), expect, "{name} join differs");
        }
    }

    #[test]
    fn nulls_never_match() {
        let l = chunk(0, &[None, None]);
        let r = chunk(1, &[None, Some(1)]);
        for (name, out) in all_methods(&l, &r, &keys()) {
            assert_eq!(out.num_rows(), 0, "{name} matched NULLs");
        }
    }

    #[test]
    fn empty_inputs_yield_empty_outputs() {
        let l = chunk(0, &[]);
        let r = chunk(1, &[Some(1)]);
        for (name, out) in all_methods(&l, &r, &keys()) {
            assert_eq!(out.num_rows(), 0, "{name}");
        }
        for (name, out) in all_methods(&r, &l, &[(ColumnRef::new(1, 0), ColumnRef::new(0, 0))]) {
            assert_eq!(out.num_rows(), 0, "{name} flipped");
        }
    }

    #[test]
    fn keyless_join_is_cartesian() {
        let l = chunk(0, &[Some(1), Some(2)]);
        let r = chunk(1, &[Some(3), Some(4), Some(5)]);
        let mut m = ExecMetrics::default();
        let out = nested_loop_join(&l, &r, &[], &mut m).unwrap();
        assert_eq!(out.num_rows(), 6);
        let out = sort_merge_join(&l, &r, &[], &mut m).unwrap();
        assert_eq!(out.num_rows(), 6);
        let out = hash_join(&l, &r, &[], &mut m).unwrap();
        assert_eq!(out.num_rows(), 6);
    }

    #[test]
    fn multi_key_joins() {
        // Two key columns; only rows agreeing on both match.
        let mut lt = Table::empty("l", &[("a", DataType::Int), ("b", DataType::Int)]);
        for (a, b) in [(1, 1), (1, 2), (2, 1)] {
            lt.push_row(vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let mut rt = Table::empty("r", &[("a", DataType::Int), ("b", DataType::Int)]);
        for (a, b) in [(1, 1), (2, 2), (2, 1)] {
            rt.push_row(vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let l = Chunk::from_base_table(0, lt);
        let r = Chunk::from_base_table(1, rt);
        let ks = vec![
            (ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
            (ColumnRef::new(0, 1), ColumnRef::new(1, 1)),
        ];
        for (name, out) in all_methods(&l, &r, &ks) {
            assert_eq!(out.num_rows(), 2, "{name}: (1,1) and (2,1) match");
        }
    }

    #[test]
    fn nested_loop_charges_inner_pages_per_outer_tuple() {
        let l = chunk(0, &[Some(1), Some(2), Some(3)]);
        let r = chunk(1, &(0..2000).map(Some).collect::<Vec<_>>());
        let inner_pages = r.data.num_pages() as u64;
        assert!(inner_pages > 1);
        let mut m = ExecMetrics::default();
        nested_loop_join(&l, &r, &keys(), &mut m).unwrap();
        assert_eq!(m.pages_read, 3 * inner_pages);
    }

    #[test]
    fn hash_keys_are_exact_near_i64_max() {
        // Regression: the old `(*x as f64).to_bits()` encoding collapsed
        // i64::MAX and i64::MAX - 1 (and every pair beyond 2^53 sharing an
        // f64 image) into one bucket, producing phantom matches.
        let l = chunk(0, &[Some(i64::MAX), Some(i64::MAX - 1), Some(i64::MIN + 1)]);
        let r = chunk(1, &[Some(i64::MAX - 1)]);
        let mut m = ExecMetrics::default();
        let out = hash_join(&l, &r, &keys(), &mut m).unwrap();
        assert_eq!(out.num_rows(), 1, "exactly one exact match");
        assert_eq!(
            out.data.row(0).unwrap(),
            vec![Value::Int(i64::MAX - 1), Value::Int(i64::MAX - 1)]
        );
        // And the same result as the other methods.
        for (name, other) in all_methods(&l, &r, &keys()) {
            assert_eq!(other.num_rows(), 1, "{name}");
        }
    }

    #[test]
    fn hash_keys_keep_int_float_cross_type_equality() {
        // Int(2) and Float(2.0) are sql_eq and must share a hash bucket;
        // Float(2.5) and Float(-0.0) match nothing integral.
        let mut lt = Table::empty("l", &[("k", DataType::Float)]);
        for v in [2.0, 2.5, -0.0] {
            lt.push_row(vec![Value::Float(v)]).unwrap();
        }
        let l = Chunk::from_base_table(0, lt);
        let r = chunk(1, &[Some(2), Some(0)]);
        let mut m = ExecMetrics::default();
        let out = hash_join(&l, &r, &keys(), &mut m).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.data.row(0).unwrap(), vec![Value::Float(2.0), Value::Int(2)]);
        // The normalization agrees with sql_eq on the awkward cases.
        assert_eq!(hash_key(&Value::Float(2.0)), hash_key(&Value::Int(2)));
        assert_ne!(hash_key(&Value::Float(-0.0)), hash_key(&Value::Int(0)));
        assert_ne!(hash_key(&Value::Float(2.5)), hash_key(&Value::Int(2)));
        assert_ne!(hash_key(&Value::Float(f64::NAN)), hash_key(&Value::Int(0)));
    }

    #[test]
    fn missing_key_column_is_an_error() {
        let l = chunk(0, &[Some(1)]);
        let r = chunk(1, &[Some(1)]);
        let bad = vec![(ColumnRef::new(5, 0), ColumnRef::new(1, 0))];
        let mut m = ExecMetrics::default();
        assert!(matches!(
            nested_loop_join(&l, &r, &bad, &mut m),
            Err(ExecError::ColumnNotInSchema(_))
        ));
    }

    #[test]
    fn rescan_join_matches_filter_then_join() {
        use crate::filter::CompiledFilter;
        use els_core::predicate::CmpOp;
        // Inner 0..100 filtered to < 10; outer keys 0..20.
        let outer = chunk(0, &(0..20).map(Some).collect::<Vec<_>>());
        let mut inner_t = Table::empty("in", &[("k", DataType::Int)]);
        for v in 0..100 {
            inner_t.push_row(vec![Value::Int(v)]).unwrap();
        }
        let filters = vec![CompiledFilter::Cmp {
            column: ColumnRef::new(1, 0),
            op: CmpOp::Lt,
            value: Value::Int(10),
        }];
        let mut m1 = ExecMetrics::default();
        let mut io = crate::buffer::PageIo::unbuffered();
        let rescan =
            nested_loop_rescan_join(&outer, 1, &inner_t, &filters, &keys(), &mut m1, &mut io)
                .unwrap();

        let inner_chunk = Chunk::from_base_table(1, inner_t.clone());
        let mut m2 = ExecMetrics::default();
        let filtered = crate::filter::apply_filters(&inner_chunk, &filters, &mut m2).unwrap();
        let reference = nested_loop_join(&outer, &filtered, &keys(), &mut m2).unwrap();
        assert_eq!(result_pairs(&rescan), result_pairs(&reference));
        assert_eq!(rescan.num_rows(), 10);
        // The rescan charged the ORIGINAL inner pages once per outer tuple.
        assert_eq!(m1.pages_read, 20 * inner_t.num_pages() as u64);
        assert_eq!(m1.tuples_scanned, 20 * 100);
    }

    /// Brute-force band-join reference: all non-NULL pairs with `lv op rv`.
    fn range_reference(left: &Chunk, right: &Chunk, op: CmpOp) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for l in 0..left.num_rows() {
            let lv = left.data.column(0).unwrap().get(l).unwrap();
            for r in 0..right.num_rows() {
                let rv = right.data.column(0).unwrap().get(r).unwrap();
                if range_pair_matches(&lv, &rv, op) {
                    out.push((l, r));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn range_join_matches_brute_force_on_every_operator() {
        let l = chunk(0, &[Some(5), Some(1), None, Some(3), Some(3)]);
        let r = chunk(1, &[Some(2), None, Some(4), Some(3)]);
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let expect = range_reference(&l, &r, op);
            let mut m = ExecMetrics::default();
            let out =
                range_join(&l, &r, &[(ColumnRef::new(0, 0), op, ColumnRef::new(1, 0))], &mut m)
                    .unwrap();
            assert_eq!(out.num_rows(), expect.len(), "{op}");
            // Every output pair satisfies the predicate.
            for i in 0..out.num_rows() {
                let row = out.data.row(i).unwrap();
                assert!(range_pair_matches(&row[0], &row[1], op), "{op}: {row:?}");
            }
            assert_eq!(m.range_join_rows, expect.len() as u64, "{op}");
            assert_eq!(m.tuples_emitted, expect.len() as u64, "{op}");
            // Both sides' non-NULL keys passed through the sort.
            assert_eq!(m.rows_sorted, 4 + 3, "{op}");
            assert!(m.comparisons > 0, "{op}");
        }
    }

    #[test]
    fn range_join_rejects_degenerate_plans() {
        let l = chunk(0, &[Some(1)]);
        let r = chunk(1, &[Some(2)]);
        let mut m = ExecMetrics::default();
        assert!(matches!(range_join(&l, &r, &[], &mut m), Err(ExecError::InvalidPlan(_))));
        let eq = [(ColumnRef::new(0, 0), CmpOp::Eq, ColumnRef::new(1, 0))];
        assert!(matches!(range_join(&l, &r, &eq, &mut m), Err(ExecError::InvalidPlan(_))));
    }

    #[test]
    fn residual_ranges_filter_band_candidates() {
        // Two columns per side: band on column 0, residual on column 1.
        let mut lt = Table::empty("l", &[("a", DataType::Int), ("u", DataType::Int)]);
        for (a, u) in [(1, 10), (2, 0), (3, 10)] {
            lt.push_row(vec![Value::Int(a), Value::Int(u)]).unwrap();
        }
        let mut rt = Table::empty("r", &[("b", DataType::Int), ("v", DataType::Int)]);
        for (b, v) in [(2, 5), (4, 5), (9, 20)] {
            rt.push_row(vec![Value::Int(b), Value::Int(v)]).unwrap();
        }
        let l = Chunk::from_base_table(0, lt);
        let r = Chunk::from_base_table(1, rt);
        let band = (ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(1, 0));
        let residual = (ColumnRef::new(0, 1), CmpOp::Lt, ColumnRef::new(1, 1));
        let mut m_band = ExecMetrics::default();
        let band_only = range_join(&l, &r, &[band], &mut m_band).unwrap();
        assert_eq!(band_only.num_rows(), 7, "a < b alone");
        let mut m = ExecMetrics::default();
        let out = range_join(&l, &r, &[band, residual], &mut m).unwrap();
        // Of the 7 band candidates, u < v keeps (1,⋅) only against v=20,
        // (2,⋅) against both of its b-matches, and (3,⋅) only against v=20.
        assert_eq!(out.num_rows(), 4);
        assert_eq!(m.range_join_rows, 4);
        // The residual charged one comparison per band candidate.
        assert_eq!(m.comparisons, m_band.comparisons + 7);
    }

    #[test]
    fn apply_join_ranges_filters_joined_rows() {
        // A keyless cartesian product post-filtered by a range behaves like
        // the band join on the same predicate.
        let l = chunk(0, &[Some(1), Some(2), Some(3)]);
        let r = chunk(1, &[Some(2), Some(3)]);
        let mut m = ExecMetrics::default();
        let product = nested_loop_join(&l, &r, &[], &mut m).unwrap();
        assert_eq!(product.num_rows(), 6);
        let ranges = [(ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(1, 0))];
        let before = m.comparisons;
        let filtered = apply_join_ranges(product, &ranges, &mut m).unwrap();
        assert_eq!(filtered.num_rows(), 3, "(1,2), (1,3), (2,3)");
        assert_eq!(m.comparisons, before + 6, "one comparison per row per range");
        // Empty ranges pass through untouched and charge nothing.
        let n = m.comparisons;
        let same = apply_join_ranges(filtered, &[], &mut m).unwrap();
        assert_eq!(same.num_rows(), 3);
        assert_eq!(m.comparisons, n);
    }

    proptest::proptest! {
        #[test]
        fn range_join_agrees_with_brute_force_on_random_inputs(
            lvals in proptest::collection::vec(proptest::option::of(0i64..12), 0..30),
            rvals in proptest::collection::vec(proptest::option::of(0i64..12), 0..30),
            op_ix in 0usize..4,
        ) {
            let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op_ix];
            let l = chunk(0, &lvals);
            let r = chunk(1, &rvals);
            let expect = range_reference(&l, &r, op);
            let mut m = ExecMetrics::default();
            let out = range_join(&l, &r, &[(ColumnRef::new(0, 0), op, ColumnRef::new(1, 0))], &mut m)
                .unwrap();
            proptest::prop_assert_eq!(out.num_rows(), expect.len());
            for i in 0..out.num_rows() {
                let row = out.data.row(i).unwrap();
                proptest::prop_assert!(range_pair_matches(&row[0], &row[1], op));
            }
            proptest::prop_assert_eq!(m.range_join_rows, expect.len() as u64);
        }
    }

    proptest::proptest! {
        #[test]
        fn methods_agree_on_random_inputs(
            lvals in proptest::collection::vec(proptest::option::of(0i64..8), 0..40),
            rvals in proptest::collection::vec(proptest::option::of(0i64..8), 0..40),
        ) {
            let l = chunk(0, &lvals);
            let r = chunk(1, &rvals);
            let expect = reference(&l, &r);
            for (name, out) in all_methods(&l, &r, &keys()) {
                proptest::prop_assert_eq!(result_pairs(&out), expect.clone(), "{} join differs", name);
            }
        }
    }
}
