//! Predicate representation and normalization (Algorithm ELS, Step 1).
//!
//! Queries are *conjunctive*: the `WHERE` clause is a conjunction of
//! comparison predicates (paper, Section 2). Three shapes exist:
//!
//! * **Local comparison** `R.x op c` — one column against a constant.
//! * **Local column equality** `R.x = R.y` — two columns of the *same*
//!   table. These arise both directly and through transitive closure
//!   (paper, Section 4, rule 2.b).
//! * **Join equality** `R.x = S.y` — columns of two different tables.
//!
//! Constructors canonicalize operand order so that structurally identical
//! predicates compare equal, which makes Step 1's deduplication (e.g. of
//! `(R1.x > 500) AND (R1.x > 500)`) a plain equality scan.

use std::cmp::Ordering;
use std::fmt;

use els_storage::Value;

use crate::error::{ElsError, ElsResult};
use crate::ids::ColumnRef;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped: `a op b  ≡  b op.flip() a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluate the operator against a comparison result.
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// True for `<`, `<=`, `>`, `>=`.
    pub fn is_range(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
    }

    /// True for `=` and `<>`, where `a op b ≡ b op a`.
    pub fn is_symmetric(self) -> bool {
        matches!(self, CmpOp::Eq | CmpOp::Ne)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One conjunct of a conjunctive `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column op value`.
    LocalCmp {
        /// The column being restricted.
        column: ColumnRef,
        /// Comparison operator.
        op: CmpOp,
        /// Constant right-hand side.
        value: Value,
    },
    /// `left = right` with both columns in the same table; canonicalized so
    /// `left < right`.
    LocalColEq {
        /// Lower-numbered column.
        left: ColumnRef,
        /// Higher-numbered column.
        right: ColumnRef,
    },
    /// `left = right` across two tables; canonicalized so `left.table <
    /// right.table`.
    JoinEq {
        /// Column of the lower-numbered table.
        left: ColumnRef,
        /// Column of the higher-numbered table.
        right: ColumnRef,
    },
    /// `left op right` across two tables with a range operator (`<`, `<=`,
    /// `>`, `>=`) — an inequality (band) join predicate. Canonicalized so
    /// `left.table < right.table`, flipping the operator when the operands
    /// swap. Range predicates never merge equivalence classes and never
    /// participate in transitive closure; they restrict join results
    /// multiplicatively, like the paper's local predicates restrict scans.
    JoinRange {
        /// Column of the lower-numbered table.
        left: ColumnRef,
        /// The range operator relating `left` to `right`.
        op: CmpOp,
        /// Column of the higher-numbered table.
        right: ColumnRef,
    },
    /// `column IS NULL` / `column IS NOT NULL`. Not part of the paper's
    /// predicate language, but required for SQL completeness; NULLs never
    /// satisfy comparisons and never join, so these interact with the rest
    /// of the pipeline only through the NULL fraction statistics.
    IsNull {
        /// The tested column.
        column: ColumnRef,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Predicate {
    /// Build a local comparison `column op value`.
    pub fn local_cmp(column: ColumnRef, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::LocalCmp { column, op, value: value.into() }
    }

    /// Build an equality between two columns, classifying it as a join or a
    /// local column equality and canonicalizing operand order.
    ///
    /// # Panics
    /// Panics when both sides are the same column (`R.x = R.x` is a
    /// tautology the caller should drop; keeping it would silently skew
    /// selectivities).
    pub fn col_eq(a: ColumnRef, b: ColumnRef) -> Predicate {
        assert_ne!(a, b, "column equality with itself is a tautology");
        let (left, right) = if a <= b { (a, b) } else { (b, a) };
        if left.table == right.table {
            Predicate::LocalColEq { left, right }
        } else {
            Predicate::JoinEq { left, right }
        }
    }

    /// Build a join equality. Panics if both columns are in the same table —
    /// use [`Predicate::col_eq`] when the classification isn't known.
    pub fn join_eq(a: ColumnRef, b: ColumnRef) -> Predicate {
        let p = Predicate::col_eq(a, b);
        assert!(
            matches!(p, Predicate::JoinEq { .. }),
            "join_eq called with two columns of the same table"
        );
        p
    }

    /// Build an inequality join predicate `a op b` between columns of two
    /// different tables, canonicalizing so the lower-numbered table is on
    /// the left (the operator flips with the operands).
    ///
    /// # Panics
    /// Panics when `op` is not a range operator or both columns are in the
    /// same table — same-table inequalities are not join predicates.
    pub fn join_range(a: ColumnRef, op: CmpOp, b: ColumnRef) -> Predicate {
        assert!(op.is_range(), "join_range requires a range operator, got `{op}`");
        assert_ne!(a.table, b.table, "join_range called with two columns of the same table");
        if a.table < b.table {
            Predicate::JoinRange { left: a, op, right: b }
        } else {
            Predicate::JoinRange { left: b, op: op.flip(), right: a }
        }
    }

    /// Build `column IS NULL`.
    pub fn is_null(column: ColumnRef) -> Predicate {
        Predicate::IsNull { column, negated: false }
    }

    /// Build `column IS NOT NULL`.
    pub fn is_not_null(column: ColumnRef) -> Predicate {
        Predicate::IsNull { column, negated: true }
    }

    /// True for every predicate shape except cross-table join predicates
    /// (equalities and range predicates).
    pub fn is_local(&self) -> bool {
        !matches!(self, Predicate::JoinEq { .. } | Predicate::JoinRange { .. })
    }

    /// True for column-equality predicates (local or join) — the predicates
    /// that merge equivalence classes.
    pub fn is_column_equality(&self) -> bool {
        matches!(self, Predicate::LocalColEq { .. } | Predicate::JoinEq { .. })
    }

    /// The columns this predicate mentions (one or two).
    pub fn columns(&self) -> Vec<ColumnRef> {
        match self {
            Predicate::LocalCmp { column, .. } | Predicate::IsNull { column, .. } => vec![*column],
            Predicate::LocalColEq { left, right }
            | Predicate::JoinEq { left, right }
            | Predicate::JoinRange { left, right, .. } => {
                vec![*left, *right]
            }
        }
    }

    /// Validate the predicate against the shape of the statistics: all table
    /// and column indices must exist, and the variant must match the operand
    /// tables.
    pub fn validate(&self, num_columns_per_table: &[usize]) -> ElsResult<()> {
        let check = |c: ColumnRef| -> ElsResult<()> {
            let ncols =
                *num_columns_per_table.get(c.table).ok_or(ElsError::UnknownTable(c.table))?;
            if c.column >= ncols {
                return Err(ElsError::UnknownColumn(c));
            }
            Ok(())
        };
        match self {
            Predicate::LocalCmp { column, .. } | Predicate::IsNull { column, .. } => check(*column),
            Predicate::LocalColEq { left, right } => {
                check(*left)?;
                check(*right)?;
                if left.table != right.table {
                    return Err(ElsError::MalformedPredicate(format!(
                        "local column equality spans tables: {left} = {right}"
                    )));
                }
                Ok(())
            }
            Predicate::JoinEq { left, right } => {
                check(*left)?;
                check(*right)?;
                if left.table == right.table {
                    return Err(ElsError::MalformedPredicate(format!(
                        "join equality within one table: {left} = {right}"
                    )));
                }
                Ok(())
            }
            Predicate::JoinRange { left, op, right } => {
                check(*left)?;
                check(*right)?;
                if !op.is_range() {
                    return Err(ElsError::MalformedPredicate(format!(
                        "range join with a non-range operator: {left} {op} {right}"
                    )));
                }
                if left.table == right.table {
                    return Err(ElsError::MalformedPredicate(format!(
                        "range join within one table: {left} {op} {right}"
                    )));
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::LocalCmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::LocalColEq { left, right } => write!(f, "{left} = {right}"),
            Predicate::JoinEq { left, right } => write!(f, "{left} = {right}"),
            Predicate::JoinRange { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::IsNull { column, negated: false } => write!(f, "{column} IS NULL"),
            Predicate::IsNull { column, negated: true } => write!(f, "{column} IS NOT NULL"),
        }
    }
}

/// Step 1 deduplication: drop predicates identical to an earlier one,
/// preserving first-occurrence order. Equality is structural on the
/// *canonicalized* predicates, so `R1.x = R2.y` and `R2.y = R1.x` collapse.
pub fn dedup_predicates(predicates: &[Predicate]) -> Vec<Predicate> {
    let mut out: Vec<Predicate> = Vec::with_capacity(predicates.len());
    for p in predicates {
        if !out.contains(p) {
            out.push(p.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_flip_round_trips() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.flip().flip(), op);
        }
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
    }

    #[test]
    fn op_eval_matches_semantics() {
        assert!(CmpOp::Lt.eval(Ordering::Less));
        assert!(!CmpOp::Lt.eval(Ordering::Equal));
        assert!(CmpOp::Le.eval(Ordering::Equal));
        assert!(CmpOp::Ne.eval(Ordering::Greater));
        assert!(CmpOp::Ge.eval(Ordering::Equal));
        assert!(!CmpOp::Eq.eval(Ordering::Less));
    }

    #[test]
    fn col_eq_classifies_and_canonicalizes() {
        let same = Predicate::col_eq(ColumnRef::new(1, 3), ColumnRef::new(1, 0));
        assert_eq!(
            same,
            Predicate::LocalColEq { left: ColumnRef::new(1, 0), right: ColumnRef::new(1, 3) }
        );
        let cross = Predicate::col_eq(ColumnRef::new(2, 0), ColumnRef::new(0, 1));
        assert_eq!(
            cross,
            Predicate::JoinEq { left: ColumnRef::new(0, 1), right: ColumnRef::new(2, 0) }
        );
    }

    #[test]
    #[should_panic(expected = "tautology")]
    fn self_equality_panics() {
        let c = ColumnRef::new(0, 0);
        let _ = Predicate::col_eq(c, c);
    }

    #[test]
    fn dedup_drops_structural_duplicates() {
        let a = Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Gt, 500i64);
        let b = Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0));
        let b_flipped = Predicate::col_eq(ColumnRef::new(1, 0), ColumnRef::new(0, 0));
        let out = dedup_predicates(&[a.clone(), b.clone(), a.clone(), b_flipped]);
        assert_eq!(out, vec![a, b]);
    }

    #[test]
    fn validate_catches_bad_indices_and_shapes() {
        let shape = vec![2usize, 1];
        assert!(Predicate::local_cmp(ColumnRef::new(0, 1), CmpOp::Eq, 1i64)
            .validate(&shape)
            .is_ok());
        assert_eq!(
            Predicate::local_cmp(ColumnRef::new(5, 0), CmpOp::Eq, 1i64)
                .validate(&shape)
                .unwrap_err(),
            ElsError::UnknownTable(5)
        );
        assert_eq!(
            Predicate::local_cmp(ColumnRef::new(1, 4), CmpOp::Eq, 1i64)
                .validate(&shape)
                .unwrap_err(),
            ElsError::UnknownColumn(ColumnRef::new(1, 4))
        );
        // A hand-built malformed variant is rejected.
        let bad = Predicate::JoinEq { left: ColumnRef::new(0, 0), right: ColumnRef::new(0, 1) };
        assert!(matches!(bad.validate(&shape), Err(ElsError::MalformedPredicate(_))));
        let bad = Predicate::LocalColEq { left: ColumnRef::new(0, 0), right: ColumnRef::new(1, 0) };
        assert!(matches!(bad.validate(&shape), Err(ElsError::MalformedPredicate(_))));
    }

    #[test]
    fn join_range_canonicalizes_by_flipping() {
        let forward = Predicate::join_range(ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(1, 0));
        assert_eq!(
            forward,
            Predicate::JoinRange {
                left: ColumnRef::new(0, 0),
                op: CmpOp::Lt,
                right: ColumnRef::new(1, 0)
            }
        );
        // `R1.c0 > R0.c0` is the same predicate written the other way round.
        let flipped = Predicate::join_range(ColumnRef::new(1, 0), CmpOp::Gt, ColumnRef::new(0, 0));
        assert_eq!(flipped, forward);
        let out = dedup_predicates(&[forward.clone(), flipped]);
        assert_eq!(out, vec![forward]);
    }

    #[test]
    #[should_panic(expected = "range operator")]
    fn join_range_rejects_equality_operator() {
        let _ = Predicate::join_range(ColumnRef::new(0, 0), CmpOp::Eq, ColumnRef::new(1, 0));
    }

    #[test]
    #[should_panic(expected = "same table")]
    fn join_range_rejects_same_table() {
        let _ = Predicate::join_range(ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(0, 1));
    }

    #[test]
    fn join_range_validates_and_is_not_local() {
        let shape = vec![2usize, 1];
        let p = Predicate::join_range(ColumnRef::new(0, 1), CmpOp::Le, ColumnRef::new(1, 0));
        assert!(p.validate(&shape).is_ok());
        assert!(!p.is_local());
        assert!(!p.is_column_equality());
        assert_eq!(p.columns(), vec![ColumnRef::new(0, 1), ColumnRef::new(1, 0)]);
        let bad = Predicate::JoinRange {
            left: ColumnRef::new(0, 0),
            op: CmpOp::Eq,
            right: ColumnRef::new(1, 0),
        };
        assert!(matches!(bad.validate(&shape), Err(ElsError::MalformedPredicate(_))));
        let bad = Predicate::JoinRange {
            left: ColumnRef::new(0, 0),
            op: CmpOp::Lt,
            right: ColumnRef::new(0, 1),
        };
        assert!(matches!(bad.validate(&shape), Err(ElsError::MalformedPredicate(_))));
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Lt, 100i64);
        assert_eq!(p.to_string(), "R0.c0 < 100");
        let j = Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0));
        assert_eq!(j.to_string(), "R0.c0 = R1.c0");
        let r = Predicate::join_range(ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(1, 0));
        assert_eq!(r.to_string(), "R0.c0 < R1.c0");
    }
}
