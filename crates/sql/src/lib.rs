//! # els-sql
//!
//! A small SQL front-end for the conjunctive select-project-join queries the
//! paper studies (Section 2: "we focus on *conjunctive* queries where the
//! selection condition in the WHERE clause is a conjunction of
//! predicates").
//!
//! Supported grammar:
//!
//! ```text
//! query       := SELECT projection FROM table [, table]* [WHERE conjunct [AND conjunct]*]
//! projection  := COUNT ( * ) | * | colref [, colref]*
//! table       := ident [AS? ident]
//! conjunct    := operand cmp operand
//! operand     := colref | literal
//! colref      := [ident .] ident
//! cmp         := = | <> | != | < | <= | > | >=
//! ```
//!
//! The pipeline is [`lexer`] → [`parser`] (producing an [`ast::Query`]) →
//! [`bind`] (resolving names against an `els-catalog` [`els_catalog::Catalog`]
//! into positional [`els_core::Predicate`]s).
//!
//! # Example
//!
//! ```
//! use els_sql::parse;
//!
//! let q = parse("SELECT COUNT(*) FROM S, M WHERE S.s = M.m AND S.s < 100").unwrap();
//! assert_eq!(q.from.len(), 2);
//! assert_eq!(q.predicates.len(), 2);
//! ```

// Clippy-level twin of the els-lint panic-freedom and metrics-only-io
// passes (scripts/check.sh runs clippy with `-D warnings`, so these warn
// levels are bans on non-test library code).
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)
)]

pub mod ast;
pub mod bind;
pub mod error;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod unparse;

pub use ast::{ColRefAst, Operand, PredicateAst, Projection, Query, TableRefAst};
pub use bind::{bind, BoundProjection, BoundQuery};
pub use error::{SqlError, SqlResult};
pub use fingerprint::{canonical_sql, fingerprint};
pub use parser::parse;
