//! Float comparison helpers — the one place `==`/`!=` on `f64` is legal.
//!
//! Estimates flow through long multiplicative chains (selectivity products,
//! urn-model ratios, EWMA corrections), so two mathematically-equal f64
//! values routinely differ in the last ulp and a raw `==` silently becomes
//! a data-dependent branch. The els-lint `numeric-discipline` pass bans
//! float equality outside this module; callers say *which* comparison they
//! mean:
//!
//! * [`exactly_zero`] / [`exactly_one`] — sentinel checks against values
//!   the code itself assigned (a cardinality set to literal `0.0`, an
//!   empty-product selectivity of `1.0`). These are bit-exact on purpose:
//!   the sentinel is stored, never computed.
//! * [`approx_eq`] — tolerance comparison for values that went through
//!   arithmetic.

/// `x` is the stored sentinel `0.0` (either sign). Use only for values
/// assigned from a literal, never for computed results — for those, use
/// [`approx_eq`]`(x, 0.0)` or a magnitude threshold.
#[inline]
pub fn exactly_zero(x: f64) -> bool {
    x == 0.0
}

/// `x` is the stored sentinel `1.0`. Same contract as [`exactly_zero`]:
/// the value must have been assigned, not computed.
#[inline]
pub fn exactly_one(x: f64) -> bool {
    x == 1.0
}

/// `a` and `b` agree to within a relative tolerance of 1e-12 (absolute
/// near zero). NaN compares unequal to everything, including itself.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    const TOL: f64 = 1e-12;
    if a == b {
        return true; // handles infinities and exact hits
    }
    if !a.is_finite() || !b.is_finite() {
        return false; // distinct infinities / NaN; no tolerance applies
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= TOL * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_bit_exact() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(1e-300));
        assert!(exactly_one(1.0));
        assert!(!exactly_one(1.0 + f64::EPSILON));
    }

    #[test]
    fn approx_eq_tolerates_ulp_noise_but_not_nan() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_eq(1e300, 1e300));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY));
    }
}
