//! The catalog registry and the bridge into `els-core`.

use std::sync::Arc;

use els_core::predicate::CmpOp;
use els_core::selectivity::SelectivityOracle;
use els_core::{ColumnRef, QueryStatistics};
use els_storage::{Table, Value};

use crate::collect::{collect_table_stats, CollectOptions};
use crate::error::{CatalogError, CatalogResult};
use crate::feedback::{FeedbackStore, QueryCorrections};
use crate::schema::TableDef;
use crate::stats::TableStats;

#[derive(Debug, Clone)]
struct Entry {
    def: TableDef,
    stats: TableStats,
    data: Arc<Table>,
}

/// A registry of tables with their definitions, statistics and data —
/// the stand-in for Starburst's system catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: Vec<Entry>,
    /// Feedback-learned correction factors. Behind an `Arc` so every
    /// clone of this catalog — in particular every copy-on-write snapshot
    /// [`crate::SharedCatalog`] publishes — shares one live store:
    /// observations harvested against an old snapshot are never lost.
    feedback: Arc<FeedbackStore>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table, collecting its statistics with `options`.
    ///
    /// # Errors
    /// [`CatalogError::DuplicateTable`] when the name is taken;
    /// [`CatalogError::InvalidOptions`] when `options` fail validation
    /// (e.g. a sampling fraction outside `(0, 1]`).
    pub fn register(&mut self, table: Table, options: &CollectOptions) -> CatalogResult<()> {
        options.validate()?;
        if self.find(table.name()).is_some() {
            return Err(CatalogError::DuplicateTable(table.name().to_owned()));
        }
        let def = TableDef::from_table(&table);
        let stats = collect_table_stats(&table, options);
        self.entries.push(Entry { def, stats, data: Arc::new(table) });
        Ok(())
    }

    fn find(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.def.name == name)
    }

    fn entry(&self, name: &str) -> CatalogResult<&Entry> {
        self.find(name)
            .map(|i| &self.entries[i])
            .ok_or_else(|| CatalogError::UnknownTable(name.to_owned()))
    }

    /// Names of all registered tables, in registration order.
    pub fn table_names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.def.name.as_str()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A table's definition.
    pub fn table_def(&self, name: &str) -> CatalogResult<&TableDef> {
        Ok(&self.entry(name)?.def)
    }

    /// A table's statistics.
    pub fn table_stats(&self, name: &str) -> CatalogResult<&TableStats> {
        Ok(&self.entry(name)?.stats)
    }

    /// A table's data.
    pub fn table_data(&self, name: &str) -> CatalogResult<Arc<Table>> {
        Ok(Arc::clone(&self.entry(name)?.data))
    }

    /// Resolve a `(table, column)` name pair to a positional
    /// [`ColumnRef`] against a `FROM` list.
    pub fn resolve_column(
        &self,
        from: &[&str],
        table: &str,
        column: &str,
    ) -> CatalogResult<ColumnRef> {
        let t = from
            .iter()
            .position(|n| *n == table)
            .ok_or_else(|| CatalogError::UnknownTable(table.to_owned()))?;
        let def = self.table_def(table)?;
        let c = def.column_index(column).ok_or_else(|| CatalogError::UnknownColumn {
            table: table.to_owned(),
            column: column.to_owned(),
        })?;
        Ok(ColumnRef::new(t, c))
    }

    /// Positional statistics for a `FROM` list, ready for
    /// [`els_core::Els::prepare`].
    pub fn query_statistics(&self, from: &[&str]) -> CatalogResult<QueryStatistics> {
        let tables = from
            .iter()
            .map(|name| Ok(self.entry(name)?.stats.to_core()))
            .collect::<CatalogResult<Vec<_>>>()?;
        Ok(QueryStatistics::new(tables))
    }

    /// The shared feedback store (correction factors learned from
    /// executed queries).
    pub fn feedback(&self) -> &Arc<FeedbackStore> {
        &self.feedback
    }

    /// A feedback-backed [`els_core::correction::CorrectionSource`] for a
    /// `FROM` list, translating positional lookups into the store's
    /// name-based keys. Also the key factory the engine's harvest path
    /// uses (see [`QueryCorrections::scan_key`] /
    /// [`QueryCorrections::join_key`]).
    pub fn corrections(&self, from: &[&str]) -> CatalogResult<QueryCorrections> {
        let tables = from
            .iter()
            .map(|name| {
                self.entry(name)?;
                Ok((*name).to_owned())
            })
            .collect::<CatalogResult<Vec<_>>>()?;
        Ok(QueryCorrections::new(Arc::clone(&self.feedback), tables))
    }

    /// A histogram/MCV-backed [`SelectivityOracle`] for a `FROM` list.
    pub fn oracle(&self, from: &[&str]) -> CatalogResult<QueryOracle<'_>> {
        let tables = from
            .iter()
            .map(|name| {
                self.find(name).ok_or_else(|| CatalogError::UnknownTable((*name).to_owned()))
            })
            .collect::<CatalogResult<Vec<_>>>()?;
        Ok(QueryOracle { catalog: self, tables })
    }
}

/// Oracle that answers local-predicate selectivity questions from the
/// catalog's histograms and MCV lists, positionally bound to one query's
/// `FROM` list. Misses (string constants, missing histograms) return `None`
/// so `els-core` falls back to its uniformity model — exactly the
/// "distribution statistics when available" behaviour of the paper's
/// Section 5.
#[derive(Debug, Clone)]
pub struct QueryOracle<'a> {
    catalog: &'a Catalog,
    tables: Vec<usize>,
}

impl QueryOracle<'_> {
    fn column_stats(&self, column: ColumnRef) -> Option<&crate::stats::ColumnStats> {
        let entry = self.catalog.entries.get(*self.tables.get(column.table)?)?;
        entry.stats.columns.get(column.column)
    }
}

impl SelectivityOracle for QueryOracle<'_> {
    fn local_selectivity(&self, column: ColumnRef, op: CmpOp, value: &Value) -> Option<f64> {
        let stats = self.column_stats(column)?;
        let v = value.as_f64()?;
        // MCV answers equality on tracked values exactly.
        if op == CmpOp::Eq {
            if let Some(s) = stats.mcv.as_ref().and_then(|m| m.eq_selectivity(v)) {
                return Some(s);
            }
        }
        stats.histogram.as_ref().map(|h| h.selectivity(op, v))
    }

    fn join_range_selectivity(&self, left: ColumnRef, op: CmpOp, right: ColumnRef) -> Option<f64> {
        let ls = self.column_stats(left)?;
        let rs = self.column_stats(right)?;
        let lh = ls.histogram.as_ref()?;
        let rh = rs.histogram.as_ref()?;
        // Both strict directions come from the pair integral; the inclusive
        // variants are complements of the *reverse* strict direction, which
        // makes "below or equal = below + equal" hold by construction.
        let lt = lh.fraction_pairs_below(rh);
        let gt = rh.fraction_pairs_below(lh);
        let sel = match op {
            CmpOp::Lt => lt,
            CmpOp::Le => 1.0 - gt,
            CmpOp::Gt => gt,
            CmpOp::Ge => 1.0 - lt,
            // Equality joins go through the equivalence-class machinery.
            CmpOp::Eq | CmpOp::Ne => return None,
        };
        // Histograms cover non-NULL rows; a NULL on either side fails the
        // comparison, so scale to the cross product of all rows.
        let non_null = (1.0 - ls.null_fraction) * (1.0 - rs.null_fraction);
        Some((sel * non_null).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

    fn sample_catalog(options: &CollectOptions) -> Catalog {
        let mut c = Catalog::new();
        let a = TableSpec::new("A", 1000)
            .column(ColumnSpec::new("x", Distribution::SequentialInt { start: 0 }))
            .generate(1);
        let b = TableSpec::new("B", 500)
            .column(ColumnSpec::new("y", Distribution::CycleInt { modulus: 50, start: 0 }))
            .generate(2);
        c.register(a, options).unwrap();
        c.register(b, options).unwrap();
        c
    }

    #[test]
    fn register_and_lookup() {
        let c = sample_catalog(&CollectOptions::default());
        assert_eq!(c.len(), 2);
        assert_eq!(c.table_names(), vec!["A", "B"]);
        assert_eq!(c.table_def("A").unwrap().num_columns(), 1);
        assert_eq!(c.table_stats("B").unwrap().row_count, 500);
        assert_eq!(c.table_data("A").unwrap().num_rows(), 1000);
        assert!(matches!(c.table_def("Z"), Err(CatalogError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut c = sample_catalog(&CollectOptions::default());
        let dup = TableSpec::new("A", 10)
            .column(ColumnSpec::new("x", Distribution::ConstInt { value: 1 }))
            .generate(1);
        assert!(matches!(
            c.register(dup, &CollectOptions::default()),
            Err(CatalogError::DuplicateTable(_))
        ));
    }

    #[test]
    fn register_rejects_invalid_sampling_options() {
        let mut c = Catalog::new();
        let t = TableSpec::new("T", 10)
            .column(ColumnSpec::new("x", Distribution::ConstInt { value: 1 }))
            .generate(1);
        let bad = CollectOptions::default().with_sampling(f64::NAN, 1);
        assert!(matches!(c.register(t, &bad), Err(CatalogError::InvalidOptions(_))));
        assert!(c.is_empty(), "rejected registration must not leave an entry");
    }

    #[test]
    fn resolve_column_is_positional_in_from_list() {
        let c = sample_catalog(&CollectOptions::default());
        // FROM B, A — B is table 0.
        let r = c.resolve_column(&["B", "A"], "A", "x").unwrap();
        assert_eq!(r, ColumnRef::new(1, 0));
        assert!(c.resolve_column(&["B"], "A", "x").is_err());
        assert!(matches!(
            c.resolve_column(&["B", "A"], "A", "nope"),
            Err(CatalogError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn query_statistics_match_catalog_order() {
        let c = sample_catalog(&CollectOptions::default());
        let qs = c.query_statistics(&["B", "A"]).unwrap();
        assert_eq!(qs.tables[0].cardinality, 500.0);
        assert_eq!(qs.tables[0].columns[0].distinct, 50.0);
        assert_eq!(qs.tables[1].cardinality, 1000.0);
    }

    #[test]
    fn oracle_uses_histograms() {
        let c = sample_catalog(&CollectOptions::full());
        let oracle = c.oracle(&["A"]).unwrap();
        let s = oracle
            .local_selectivity(ColumnRef::new(0, 0), CmpOp::Lt, &Value::Int(100))
            .expect("histogram answers");
        assert!((s - 0.1).abs() < 0.02, "selectivity {s}");
    }

    #[test]
    fn oracle_misses_without_histograms() {
        let c = sample_catalog(&CollectOptions::default());
        let oracle = c.oracle(&["A"]).unwrap();
        assert!(oracle
            .local_selectivity(ColumnRef::new(0, 0), CmpOp::Lt, &Value::Int(100))
            .is_none());
        // String constants miss too.
        let c2 = sample_catalog(&CollectOptions::full());
        let o2 = c2.oracle(&["A"]).unwrap();
        assert!(o2.local_selectivity(ColumnRef::new(0, 0), CmpOp::Eq, &Value::from("s")).is_none());
    }

    #[test]
    fn oracle_answers_range_join_selectivity_from_histograms() {
        // A.x uniform 0..999, B.y cycles 0..49: P(x < y) = E_y[y/1000]
        // = 24.5/1000; P(x > y) is nearly everything.
        let c = sample_catalog(&CollectOptions::full());
        let a = ColumnRef::new(0, 0);
        let b = ColumnRef::new(1, 0);
        let oracle = c.oracle(&["A", "B"]).unwrap();
        let lt = oracle.join_range_selectivity(a, CmpOp::Lt, b).expect("histograms answer");
        assert!((lt - 0.0245).abs() < 0.01, "P(x<y) {lt}");
        let gt = oracle.join_range_selectivity(a, CmpOp::Gt, b).unwrap();
        let le = oracle.join_range_selectivity(a, CmpOp::Le, b).unwrap();
        let ge = oracle.join_range_selectivity(a, CmpOp::Ge, b).unwrap();
        // Inclusive dominates strict up to fp jitter (the interpolated
        // CDFs are continuous, so the pair-equality mass is ~0 and the
        // complement identity makes `le` land within epsilon of `lt`).
        assert!(le >= lt - 1e-9 && ge >= gt - 1e-9, "inclusive dominates strict");
        assert!(lt + ge <= 1.0 + 1e-9 && le + gt <= 1.0 + 1e-9, "complements fit");
        assert!((gt - (1.0 - 0.0245)).abs() < 0.01, "P(x>y) {gt}");
        // Equality is not a range question.
        assert_eq!(oracle.join_range_selectivity(a, CmpOp::Eq, b), None);
    }

    #[test]
    fn oracle_range_join_misses_without_histograms() {
        let c = sample_catalog(&CollectOptions::default());
        let oracle = c.oracle(&["A", "B"]).unwrap();
        assert!(oracle
            .join_range_selectivity(ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(1, 0))
            .is_none());
    }

    #[test]
    fn oracle_mcv_beats_histogram_for_hot_equality() {
        let mut c = Catalog::new();
        let z = TableSpec::new("Z", 5000)
            .column(ColumnSpec::new("v", Distribution::ZipfInt { n: 100, theta: 1.5, start: 0 }))
            .generate(9);
        c.register(z, &CollectOptions::full()).unwrap();
        let truth = {
            let data = c.table_data("Z").unwrap();
            let col = data.column_by_name("v").unwrap();
            col.iter().filter(|v| v.as_int() == Some(0)).count() as f64 / 5000.0
        };
        let oracle = c.oracle(&["Z"]).unwrap();
        let est =
            oracle.local_selectivity(ColumnRef::new(0, 0), CmpOp::Eq, &Value::Int(0)).unwrap();
        assert!((est - truth).abs() < 1e-9, "MCV estimate {est} != truth {truth}");
    }

    #[test]
    fn catalog_clones_share_one_feedback_store() {
        let c = sample_catalog(&CollectOptions::default());
        let snapshot_style_clone = c.clone();
        // Learning through the clone (how a snapshot would) is visible to
        // corrections built from the original.
        let learn = snapshot_style_clone.corrections(&["A", "B"]).unwrap();
        let key = learn.scan_key(0, "c0<100").unwrap();
        snapshot_style_clone.feedback().observe(key, 100.0, 1000.0, false);
        let apply = c.corrections(&["B", "A"]).unwrap();
        use els_core::correction::CorrectionSource as _;
        let corr = apply.scan_correction(1, "c0<100").expect("shared store");
        assert!((corr - 10.0).abs() < 1e-9);
        // Unknown FROM names are rejected.
        assert!(matches!(c.corrections(&["nope"]), Err(CatalogError::UnknownTable(_))));
    }

    #[test]
    fn full_pipeline_into_els_core() {
        // The catalog output plugs straight into Els::prepare.
        let c = sample_catalog(&CollectOptions::full());
        let stats = c.query_statistics(&["A", "B"]).unwrap();
        let preds = vec![els_core::Predicate::col_eq(
            c.resolve_column(&["A", "B"], "A", "x").unwrap(),
            c.resolve_column(&["A", "B"], "B", "y").unwrap(),
        )];
        let els = els_core::Els::prepare(&preds, &stats, &els_core::ElsOptions::default()).unwrap();
        // ||A ⋈ B|| = 1000·500/max(1000,50) = 500.
        let s = els.join(&els.initial_state(0).unwrap(), 1).unwrap();
        assert_eq!(s.cardinality(), 500.0);
    }
}
