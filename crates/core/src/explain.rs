//! Human-readable estimation reports.
//!
//! [`Els::report`] assembles everything the algorithm decided for a query —
//! effective statistics (Steps 3–4), equivalence classes and Section 6
//! adjustments (Step 5), and the per-step selectivity choices for one join
//! order (Step 6) — into a structured [`EstimationReport`] whose `Display`
//! renders an EXPLAIN-style text block. Tools (and the `els` engine's
//! `explain`) build on this instead of poking at internals.

use std::fmt;

use crate::algorithm::Els;
use crate::error::ElsResult;
use crate::estimator::JoinStepExplanation;
use crate::ids::TableId;

/// Per-table summary of Steps 3–5.
#[derive(Debug, Clone, PartialEq)]
pub struct TableReport {
    /// Table position in the `FROM` list.
    pub table: TableId,
    /// ‖R‖ before predicates.
    pub original_cardinality: f64,
    /// ‖R‖′ (or ‖R‖″) after Steps 4–5.
    pub effective_cardinality: f64,
    /// Combined local-predicate selectivity.
    pub local_selectivity: f64,
    /// `(original d, effective d′)` per column.
    pub columns: Vec<(f64, f64)>,
}

/// The full report.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimationReport {
    /// Per-table statistics summaries.
    pub tables: Vec<TableReport>,
    /// Rendered predicates after Steps 1–2.
    pub predicates: Vec<String>,
    /// Equivalence classes (rendered member lists).
    pub classes: Vec<Vec<String>>,
    /// Section 6 adjustments (rendered).
    pub adjustments: Vec<String>,
    /// Per-step explanations along the requested join order.
    pub steps: Vec<JoinStepExplanation>,
}

impl Els {
    /// Build a report for `order` (which must visit distinct, valid
    /// tables; it need not cover every table).
    pub fn report(&self, order: &[TableId]) -> ElsResult<EstimationReport> {
        let eff = self.effective_stats();
        let tables = eff
            .tables
            .iter()
            .enumerate()
            .map(|(t, table)| TableReport {
                table: t,
                original_cardinality: table.original_cardinality,
                effective_cardinality: table.cardinality,
                local_selectivity: table.local_selectivity,
                columns: table
                    .original_distinct
                    .iter()
                    .zip(&table.column_distinct)
                    .map(|(&o, &e)| (o, e))
                    .collect(),
            })
            .collect();
        let predicates = self.predicates().iter().map(|p| p.to_string()).collect();
        let classes = self
            .classes()
            .iter()
            .map(|(_, members)| members.iter().map(|m| m.to_string()).collect())
            .collect();
        let adjustments = self
            .same_table_adjustments()
            .iter()
            .map(|a| {
                format!(
                    "R{}: ||R||' {} -> {} (class {}), join column cardinality {}",
                    a.table, a.cardinality_before, a.cardinality_after, a.class, a.join_distinct
                )
            })
            .collect();
        let mut steps = Vec::new();
        if let Some((&first, rest)) = order.split_first() {
            let mut state = self.initial_state(first)?;
            for &t in rest {
                let step = self.prepared().explain_join(&state, t)?;
                state = self.join(&state, t)?;
                steps.push(step);
            }
        }
        Ok(EstimationReport { tables, predicates, classes, adjustments, steps })
    }
}

impl fmt::Display for EstimationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "predicates:")?;
        for p in &self.predicates {
            writeln!(f, "  {p}")?;
        }
        if !self.classes.is_empty() {
            writeln!(f, "equivalence classes:")?;
            for (i, members) in self.classes.iter().enumerate() {
                writeln!(f, "  EC{i}: {{{}}}", members.join(", "))?;
            }
        }
        if !self.adjustments.is_empty() {
            writeln!(f, "same-table adjustments (Section 6):")?;
            for a in &self.adjustments {
                writeln!(f, "  {a}")?;
            }
        }
        writeln!(f, "effective statistics:")?;
        for t in &self.tables {
            write!(
                f,
                "  R{}: ||R|| {} -> {:.1} (S_local {:.4}); d: ",
                t.table, t.original_cardinality, t.effective_cardinality, t.local_selectivity
            )?;
            let cols: Vec<String> = t.columns.iter().map(|(o, e)| format!("{o}->{e}")).collect();
            writeln!(f, "[{}]", cols.join(", "))?;
        }
        if !self.steps.is_empty() {
            writeln!(f, "join steps:")?;
            for s in &self.steps {
                writeln!(
                    f,
                    "  + R{} (||R||' {:.1}): {:.3} -> {:.3}",
                    s.table, s.base_cardinality, s.cardinality_before, s.cardinality_after
                )?;
                for c in &s.classes {
                    let eligible: Vec<String> =
                        c.eligible.iter().map(|s| format!("{s:.3e}")).collect();
                    writeln!(
                        f,
                        "      {}: eligible [{}] -> chose {:.3e}",
                        c.class,
                        eligible.join(", "),
                        c.chosen
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn section8_els(rule: SelectivityRule) -> Els {
        let mk = |rows: f64| {
            TableStatistics::new(rows, vec![ColumnStatistics::with_domain(rows, 0.0, rows - 1.0)])
        };
        let stats =
            QueryStatistics::new(vec![mk(1000.0), mk(10_000.0), mk(50_000.0), mk(100_000.0)]);
        let preds = vec![
            Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
            Predicate::col_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)),
            Predicate::col_eq(ColumnRef::new(2, 0), ColumnRef::new(3, 0)),
            Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Lt, 100i64),
        ];
        Els::prepare(&preds, &stats, &ElsOptions::default().with_rule(rule)).unwrap()
    }

    #[test]
    fn report_contains_all_sections() {
        let els = section8_els(SelectivityRule::LargestSelectivity);
        let r = els.report(&[1, 2, 0, 3]).unwrap();
        assert_eq!(r.tables.len(), 4);
        assert_eq!(r.predicates.len(), 10);
        assert_eq!(r.classes.len(), 1);
        assert_eq!(r.steps.len(), 3);
        // Step 2 (joining R0=S) must show two eligible predicates in EC0.
        assert_eq!(r.steps[1].table, 0);
        assert_eq!(r.steps[1].classes.len(), 1);
        assert_eq!(r.steps[1].classes[0].eligible.len(), 2);
    }

    #[test]
    fn step_explanations_match_the_estimates() {
        for rule in [
            SelectivityRule::Multiplicative,
            SelectivityRule::SmallestSelectivity,
            SelectivityRule::LargestSelectivity,
        ] {
            let els = section8_els(rule);
            let order = [1usize, 2, 0, 3];
            let r = els.report(&order).unwrap();
            let sizes = els.estimate_order(&order).unwrap();
            for (step, size) in r.steps.iter().zip(&sizes) {
                assert!(
                    (step.cardinality_after - size).abs() <= size.abs() * 1e-12 + 1e-300,
                    "{rule:?}: step says {}, estimate says {size}",
                    step.cardinality_after
                );
            }
        }
    }

    #[test]
    fn display_renders_the_key_markers() {
        let els = section8_els(SelectivityRule::LargestSelectivity);
        let text = els.report(&[1, 2, 0, 3]).unwrap().to_string();
        assert!(text.contains("equivalence classes"));
        assert!(text.contains("EC0"));
        assert!(text.contains("join steps"));
        assert!(text.contains("chose"));
        assert!(text.contains("effective statistics"));
    }

    #[test]
    fn empty_order_yields_no_steps() {
        let els = section8_els(SelectivityRule::LargestSelectivity);
        let r = els.report(&[]).unwrap();
        assert!(r.steps.is_empty());
        let r = els.report(&[2]).unwrap();
        assert!(r.steps.is_empty());
    }
}
