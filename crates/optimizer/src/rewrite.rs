//! Predicate transitive closure as a query rewrite.
//!
//! The paper implemented PTC "as a query rewrite rule [11] so that we could
//! disable it as necessary for the experiments" (Section 8). The estimation
//! core applies closure internally when asked; this module provides the
//! same transformation at the *query* level, so the rewritten predicate
//! list can be inspected, EXPLAIN'd, or fed to any consumer.

use els_core::closure::transitive_closure;
use els_sql::BoundQuery;

/// Rewrite a bound query by closing its predicate set under the five
/// implication rules of the paper's Section 4 (derived join predicates and
/// derived local filters are appended; duplicates are dropped).
pub fn apply_predicate_transitive_closure(query: &BoundQuery) -> BoundQuery {
    BoundQuery {
        table_names: query.table_names.clone(),
        binding_names: query.binding_names.clone(),
        projection: query.projection.clone(),
        predicates: transitive_closure(&query.predicates),
        order_by: query.order_by.clone(),
        limit: query.limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_catalog::collect::CollectOptions;
    use els_catalog::Catalog;
    use els_sql::{bind, parse};
    use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, col, rows) in
            [("S", "s", 100usize), ("M", "m", 200), ("B", "b", 300), ("G", "g", 400)]
        {
            let t = TableSpec::new(name, rows)
                .column(ColumnSpec::new(col, Distribution::SequentialInt { start: 0 }))
                .generate(1);
            c.register(t, &CollectOptions::default()).unwrap();
        }
        c
    }

    #[test]
    fn rewrites_the_section8_query() {
        let q =
            parse("SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100")
                .unwrap();
        let bound = bind(&q, &catalog()).unwrap();
        assert_eq!(bound.predicates.len(), 4);
        let closed = apply_predicate_transitive_closure(&bound);
        // 6 join predicates + 4 filters.
        assert_eq!(closed.predicates.len(), 10);
        // The rewrite preserves everything else.
        assert_eq!(closed.table_names, bound.table_names);
        assert_eq!(closed.projection, bound.projection);
    }

    #[test]
    fn idempotent() {
        let q = parse("SELECT COUNT(*) FROM S, M WHERE s = m AND s < 10").unwrap();
        let bound = bind(&q, &catalog()).unwrap();
        let once = apply_predicate_transitive_closure(&bound);
        let twice = apply_predicate_transitive_closure(&once);
        assert_eq!(once, twice);
    }
}
