//! **F7** — join-ordering strategies × estimators.
//!
//! The paper motivates incremental estimation with three consumer families
//! (Section 1): the System R dynamic program [13], the AB algorithm's
//! greedy augmentation [15], and randomized algorithms [14, 5]. This figure
//! runs all three against the same chain workloads under the ELS estimator
//! and reports (a) estimated plan cost relative to the exact DP and (b)
//! optimization time, including sizes beyond the DP's reach.
//!
//! Expected shape: on chains the greedy and iterative-improvement results
//! stay within a small factor of the DP optimum while scaling far past 16
//! tables — evidence that a *correct incremental estimator* composes with
//! every optimizer architecture the paper names.

// Tooling/timing layer: measuring wall clocks (and exiting non-zero) is
// this crate's job, so the workspace-wide `disallowed-methods` bans from
// clippy.toml do not apply here.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use els_bench::{chain_predicates, chain_statistics};
use els_core::{Els, ElsOptions};
use els_exec::JoinMethod;
use els_optimizer::enumerate::{enumerate, TreeShape};
use els_optimizer::heuristic::{greedy_order, iterative_improvement};
use els_optimizer::{CostParams, TableProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let methods = [JoinMethod::NestedLoop, JoinMethod::SortMerge];
    let params = CostParams::default();

    println!("# F7 — plan cost (relative to exact DP) and optimization time by strategy");
    println!("(chain queries, filter on table 0, ELS estimation)\n");
    println!(
        "| {:>3} | {:>12} | {:>12} | {:>12} | {:>9} | {:>9} | {:>9} |",
        "n", "DP cost", "greedy/DP", "iter-imp/DP", "DP ms", "greedy ms", "II ms"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(5),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(11),
        "-".repeat(11),
        "-".repeat(11)
    );

    for n in [4usize, 6, 8, 10, 12, 14, 16, 20, 24] {
        let dims: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let rows = 500.0 * ((i % 5) + 1) as f64 * ((i / 5) + 1) as f64;
                (rows, rows)
            })
            .collect();
        let stats = chain_statistics(&dims);
        let mut preds = chain_predicates(n);
        preds.push(els_core::Predicate::local_cmp(
            els_core::ColumnRef::new(0, 0),
            els_core::CmpOp::Lt,
            50i64,
        ));
        let els = Els::prepare(&preds, &stats, &ElsOptions::algorithm_els())?;
        let profiles: Vec<TableProfile> =
            dims.iter().map(|&(rows, _)| TableProfile::synthetic(rows, 16)).collect();

        let time = |f: &mut dyn FnMut() -> f64| {
            let start = Instant::now();
            let cost = f();
            (cost, start.elapsed().as_secs_f64() * 1e3)
        };

        let (dp_cost, dp_ms) = if n <= 16 {
            time(&mut || {
                enumerate(&els, &profiles, &methods, &params, TreeShape::LeftDeep)
                    .unwrap()
                    .estimated_cost
            })
        } else {
            (f64::NAN, f64::NAN)
        };
        let (greedy_cost, greedy_ms) =
            time(&mut || greedy_order(&els, &profiles, &methods, &params).unwrap().estimated_cost);
        let (ii_cost, ii_ms) = time(&mut || {
            iterative_improvement(&els, &profiles, &methods, &params, 4, 42).unwrap().estimated_cost
        });

        let rel = |c: f64| if dp_cost.is_nan() { f64::NAN } else { c / dp_cost };
        println!(
            "| {:>3} | {:>12.1} | {:>12.3} | {:>12.3} | {:>9.2} | {:>9.2} | {:>9.2} |",
            n,
            dp_cost,
            rel(greedy_cost),
            rel(ii_cost),
            dp_ms,
            greedy_ms,
            ii_ms,
        );
    }
    println!("\n(n > 16: the dense DP is out of reach — NaN — while both heuristics continue.)");
    Ok(())
}
