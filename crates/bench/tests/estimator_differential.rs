//! Differential tests for the `CardinalityEstimator` trait refactor.
//!
//! The refactor routed all enumeration and analysis through
//! `&dyn CardinalityEstimator`; these tests pin that the trait path is
//! bit-exact with the inherent `Els` methods it delegates to — across the
//! paper's four Section 8 presets and every selectivity rule — and that
//! the UES contender really is an upper bound on the bench workloads.

use els::engine::Database;
use els_bench::{chain_predicates, chain_statistics};
use els_core::{CardinalityEstimator, Els, SelectivityRule};
use els_optimizer::{EstimatorPreset, EstimatorStrategy, OptimizerOptions};
use els_storage::datagen::starburst_experiment_tables_sized;

/// The Section 8 chain's statistics at benchmark scale: `(rows, distinct)`
/// for S/M/B/G, one join column per table.
fn section8_dims() -> Vec<(f64, f64)> {
    vec![(1_000.0, 1_000.0), (10_000.0, 1_000.0), (50_000.0, 5_000.0), (100_000.0, 10_000.0)]
}

/// All left-deep orders of a 4-table query.
fn orders() -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for a in 0..4usize {
        for b in 0..4 {
            for c in 0..4 {
                for d in 0..4 {
                    let o = vec![a, b, c, d];
                    let mut s = o.clone();
                    s.sort_unstable();
                    s.dedup();
                    if s.len() == 4 {
                        out.push(o);
                    }
                }
            }
        }
    }
    out
}

#[test]
fn trait_path_is_bit_exact_with_inherent_els_across_presets() {
    let stats = chain_statistics(&section8_dims());
    let preds = chain_predicates(4);
    let presets =
        [EstimatorPreset::SmNoPtc, EstimatorPreset::Sm, EstimatorPreset::Sss, EstimatorPreset::Els];
    for preset in presets {
        let options = OptimizerOptions::preset(preset);
        let els = Els::prepare(&preds, &stats, &options.els).expect("fixture prepares");
        let dynamic: &dyn CardinalityEstimator = &els;
        for order in orders() {
            let direct = els.estimate_order(&order).expect("direct path estimates");
            let via_trait = dynamic.estimate_order(&order).expect("trait path estimates");
            assert_eq!(direct.len(), via_trait.len());
            for (d, t) in direct.iter().zip(&via_trait) {
                assert_eq!(d.to_bits(), t.to_bits(), "{preset:?} diverged on {order:?}");
            }
        }
    }
}

#[test]
fn trait_path_is_bit_exact_with_inherent_els_across_rules() {
    let stats = chain_statistics(&section8_dims());
    let preds = chain_predicates(4);
    let rules = [
        SelectivityRule::Multiplicative,
        SelectivityRule::SmallestSelectivity,
        SelectivityRule::LargestSelectivity,
        SelectivityRule::Representative,
    ];
    for rule in rules {
        let mut els_options = els_core::ElsOptions::default();
        els_options.rule = rule;
        let els = Els::prepare(&preds, &stats, &els_options).expect("fixture prepares");
        let dynamic: &dyn CardinalityEstimator = &els;
        for order in orders() {
            let direct = els.estimate_order(&order).expect("direct path estimates");
            let via_trait = dynamic.estimate_order(&order).expect("trait path estimates");
            for (d, t) in direct.iter().zip(&via_trait) {
                assert_eq!(d.to_bits(), t.to_bits(), "{rule:?} diverged on {order:?}");
            }
        }
        // The two state-transition entry points agree with the batch path.
        let mut state = dynamic.initial_state(0).expect("state starts");
        for &t in &[1usize, 2, 3] {
            state = dynamic.join(&state, t).expect("state extends");
        }
        let direct = els.estimate_order(&[0, 1, 2, 3]).expect("direct path estimates");
        assert_eq!(state.cardinality().to_bits(), direct.last().unwrap().to_bits());
    }
}

#[test]
fn ues_bound_holds_on_the_bench_workloads() {
    // Every measured join under the UpperBound strategy must estimate at
    // or above the observed actual — on the filtered Section 8 chain and
    // on an unfiltered two-table probe, at two different scales.
    let workloads = [
        "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100",
        "SELECT COUNT(*) FROM M, G WHERE m = g",
        "SELECT COUNT(*) FROM S, M WHERE s = m",
    ];
    for scale in [[50usize, 500, 2_000, 4_000], [100, 1_000, 5_000, 10_000]] {
        let mut db = Database::new();
        db.set_optimizer_options(OptimizerOptions::default().with_bushy_trees().with_hash_join());
        db.set_strategy(EstimatorStrategy::UpperBound);
        for table in starburst_experiment_tables_sized(7, &scale) {
            db.register(table).expect("fixture tables register");
        }
        for sql in workloads {
            let report = db.explain_analyze(sql).expect("workload executes");
            for op in report.join_operators() {
                assert!(
                    op.estimated >= op.actual as f64,
                    "UES under-estimated {sql:?} at scale {scale:?}: {} < {}",
                    op.estimated,
                    op.actual
                );
            }
        }
    }
}
