//! Property tests for the paper's central claim: under the model
//! assumptions, incremental estimation with Rule LS agrees with the closed
//! form of Equation 3 — for any statistics and any join order — while
//! Rules M and SS only ever underestimate (paper, Sections 3 and 7).

use els::core::exact;
use els::core::prelude::*;
use proptest::prelude::*;

/// Build a single-equivalence-class chain query over `dims` tables, where
/// `dims[i] = (cardinality, join-column distinct)`.
fn chain_query(dims: &[(f64, f64)], rule: SelectivityRule) -> Els {
    let stats = QueryStatistics::new(
        dims.iter()
            .map(|&(rows, d)| TableStatistics::new(rows, vec![ColumnStatistics::with_distinct(d)]))
            .collect(),
    );
    let predicates: Vec<Predicate> = (1..dims.len())
        .map(|i| Predicate::join_eq(ColumnRef::new(i - 1, 0), ColumnRef::new(i, 0)))
        .collect();
    Els::prepare(&predicates, &stats, &ElsOptions::default().with_rule(rule)).unwrap()
}

/// Random table dimensions: distinct count <= cardinality.
fn dims_strategy(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((1u64..5000, 1u64..5000), n..=n).prop_map(|v| {
        v.into_iter()
            .map(|(rows, d)| {
                let rows = rows.max(d) as f64;
                (rows, d as f64)
            })
            .collect()
    })
}

/// All permutations of 0..n (n small).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for i in 0..=p.len() {
            let mut q = p.clone();
            q.insert(i, n - 1);
            out.push(q);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's Section 7 proof, checked numerically: Rule LS's
    /// incremental estimate equals Equation 3 for every join order.
    #[test]
    fn ls_matches_equation_3_for_every_order(dims in dims_strategy(4)) {
        let els = chain_query(&dims, SelectivityRule::LargestSelectivity);
        let truth = exact::n_way(&dims);
        for order in permutations(dims.len()) {
            let estimate = els.estimate_final(&order).unwrap();
            let rel = (estimate - truth).abs() / truth.max(1e-12);
            prop_assert!(rel < 1e-9,
                "order {order:?}: LS {estimate} != Eq3 {truth} for dims {dims:?}");
        }
    }

    /// Consequently Rule LS is join-order independent.
    #[test]
    fn ls_is_order_independent(dims in dims_strategy(5)) {
        let els = chain_query(&dims, SelectivityRule::LargestSelectivity);
        let reference = els.estimate_final(&[0, 1, 2, 3, 4]).unwrap();
        for order in [[4usize, 3, 2, 1, 0], [2, 0, 4, 1, 3], [1, 4, 0, 3, 2]] {
            let estimate = els.estimate_final(&order).unwrap();
            let rel = (estimate - reference).abs() / reference.max(1e-12);
            prop_assert!(rel < 1e-9, "order {order:?}: {estimate} != {reference}");
        }
    }

    /// Rules M and SS never exceed LS (they underestimate within a class).
    #[test]
    fn m_and_ss_never_exceed_ls(dims in dims_strategy(4)) {
        let ls = chain_query(&dims, SelectivityRule::LargestSelectivity);
        let ss = chain_query(&dims, SelectivityRule::SmallestSelectivity);
        let m = chain_query(&dims, SelectivityRule::Multiplicative);
        for order in permutations(dims.len()) {
            let e_ls = ls.estimate_final(&order).unwrap();
            let e_ss = ss.estimate_final(&order).unwrap();
            let e_m = m.estimate_final(&order).unwrap();
            prop_assert!(e_m <= e_ss * (1.0 + 1e-9), "M {e_m} > SS {e_ss} for {order:?}");
            prop_assert!(e_ss <= e_ls * (1.0 + 1e-9), "SS {e_ss} > LS {e_ls} for {order:?}");
        }
    }

    /// Two independent equivalence classes multiply (Section 7): the
    /// estimate of a query with two disjoint join-column classes equals the
    /// product of the per-class reductions.
    #[test]
    fn independent_classes_compose_multiplicatively(
        a in dims_strategy(3),
        b in dims_strategy(3),
    ) {
        // Three tables, each with two join columns; class A links column 0
        // across tables, class B links column 1.
        let stats = QueryStatistics::new(
            (0..3)
                .map(|i| {
                    let rows = a[i].0.max(b[i].0);
                    TableStatistics::new(
                        rows,
                        vec![
                            ColumnStatistics::with_distinct(a[i].1),
                            ColumnStatistics::with_distinct(b[i].1),
                        ],
                    )
                })
                .collect(),
        );
        let rows: Vec<f64> = (0..3).map(|i| a[i].0.max(b[i].0)).collect();
        let predicates = vec![
            Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
            Predicate::join_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)),
            Predicate::join_eq(ColumnRef::new(0, 1), ColumnRef::new(1, 1)),
            Predicate::join_eq(ColumnRef::new(1, 1), ColumnRef::new(2, 1)),
        ];
        let els = Els::prepare(&predicates, &stats, &ElsOptions::default()).unwrap();
        let estimate = els.estimate_final(&[0, 1, 2]).unwrap();

        // Expected: prod(rows) / (prod d_a except min) / (prod d_b except min).
        let da: Vec<f64> = a.iter().map(|x| x.1).collect();
        let db: Vec<f64> = b.iter().map(|x| x.1).collect();
        let prod_except_min = |d: &[f64]| {
            let min = d.iter().copied().fold(f64::INFINITY, f64::min);
            d.iter().product::<f64>() / min
        };
        let expected: f64 =
            rows.iter().product::<f64>() / prod_except_min(&da) / prod_except_min(&db);
        let rel = (estimate - expected).abs() / expected.max(1e-12);
        prop_assert!(rel < 1e-9, "estimate {estimate} != expected {expected}");
    }
}

#[test]
fn ls_handles_equal_distinct_counts() {
    // Degenerate ties: all d equal; any order, estimate = prod rows / d^(n-1).
    let dims = vec![(100.0, 10.0); 4];
    let els = chain_query(&dims, SelectivityRule::LargestSelectivity);
    let expected = 100.0f64.powi(4) / 10.0f64.powi(3);
    for order in permutations(4) {
        assert_eq!(els.estimate_final(&order).unwrap(), expected);
    }
}

#[test]
fn single_join_all_rules_agree() {
    // With one eligible predicate there is nothing to choose: M = SS = LS.
    let dims = vec![(100.0, 10.0), (200.0, 50.0)];
    for rule in [
        SelectivityRule::Multiplicative,
        SelectivityRule::SmallestSelectivity,
        SelectivityRule::LargestSelectivity,
    ] {
        let els = chain_query(&dims, rule);
        assert_eq!(els.estimate_final(&[0, 1]).unwrap(), 100.0 * 200.0 / 50.0);
    }
}
