//! The optimizer front door.

use std::sync::Arc;

use els_catalog::{Catalog, FeedbackMode};
use els_core::{
    CardinalityEstimator, CorrectionSource, Els, ElsOptions, NoCorrections, NoEstimatesEstimator,
    Predicate, QueryStatistics, UpperBoundEstimator,
};
use els_exec::plan::PlanOutput;
use els_exec::{JoinMethod, QueryPlan};
use els_sql::{BoundProjection, BoundQuery};
use els_storage::Table;

use crate::cost::CostParams;
use crate::enumerate::{enumerate, TreeShape};
use crate::error::{OptimizerError, OptimizerResult};
use crate::profile::TableProfile;

/// The four estimation configurations of the paper's Section 8 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorPreset {
    /// Algorithm SM on the original query (no predicate transitive
    /// closure) — the paper's first row.
    SmNoPtc,
    /// Algorithm SM after predicate transitive closure — second row.
    Sm,
    /// Algorithm SSS after predicate transitive closure — third row.
    Sss,
    /// Algorithm ELS (closure is integral to it) — fourth row.
    Els,
}

impl EstimatorPreset {
    /// The label used in the paper's experiment table.
    pub fn label(self) -> &'static str {
        match self {
            EstimatorPreset::SmNoPtc => "Orig. SM",
            EstimatorPreset::Sm => "Orig.+PTC SM",
            EstimatorPreset::Sss => "Orig.+PTC SSS",
            EstimatorPreset::Els => "Orig. ELS",
        }
    }

    /// The estimation-core options this preset denotes.
    pub fn els_options(self) -> ElsOptions {
        match self {
            EstimatorPreset::SmNoPtc => ElsOptions::algorithm_sm().with_closure(false),
            EstimatorPreset::Sm => ElsOptions::algorithm_sm(),
            EstimatorPreset::Sss => ElsOptions::algorithm_sss(),
            EstimatorPreset::Els => ElsOptions::algorithm_els(),
        }
    }

    /// All four presets, in the paper's row order.
    pub fn all() -> [EstimatorPreset; 4] {
        [EstimatorPreset::SmNoPtc, EstimatorPreset::Sm, EstimatorPreset::Sss, EstimatorPreset::Els]
    }
}

/// Which cardinality estimator drives join enumeration.
///
/// Every strategy still prepares the paper's [`Els`] estimator alongside
/// (EXPLAIN, accuracy reporting and feedback harvesting are defined
/// against it); the strategy picks whose numbers the dynamic program
/// *plans* with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimatorStrategy {
    /// The configured [`ElsOptions`] pipeline (Algorithm ELS by default;
    /// rule M / SS / representative and the standard pre-processing are
    /// selected through [`OptimizerOptions::els`]).
    #[default]
    Els,
    /// The UES-style sketch bound ([`UpperBoundEstimator`]): plan against
    /// guaranteed upper bounds built from max join-column frequencies.
    UpperBound,
    /// The Simpli-Squared baseline ([`NoEstimatesEstimator`]): no
    /// statistics, joins assumed never to expand.
    NoEstimates,
}

impl EstimatorStrategy {
    /// Stable short name (matches [`CardinalityEstimator::name`] labels).
    pub fn label(self) -> &'static str {
        match self {
            EstimatorStrategy::Els => "els",
            EstimatorStrategy::UpperBound => "upper-bound",
            EstimatorStrategy::NoEstimates => "no-estimates",
        }
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerOptions {
    /// Estimation-core configuration (rule, pre-processing, closure).
    pub els: ElsOptions,
    /// Which estimator's numbers the join enumerator plans with.
    pub strategy: EstimatorStrategy,
    /// Join methods the enumerator may choose from. The paper's experiment
    /// enabled Nested Loops and Sort Merge.
    pub join_methods: Vec<JoinMethod>,
    /// Cost-model constants.
    pub cost: CostParams,
    /// Join-tree space to enumerate (left-deep by default, as in System R
    /// and the paper's experiment).
    pub tree_shape: TreeShape,
    /// Runtime-feedback policy: whether executions are harvested into the
    /// catalog's [`els_catalog::FeedbackStore`] and whether the estimator
    /// consults published corrections. `Off` reproduces the paper exactly.
    pub feedback: FeedbackMode,
    /// Plan-cache lane. Does not shape plans, but *is* folded into
    /// [`Self::config_fingerprint`] (via the Debug rendering), so two
    /// configurations differing only in lane never share cache entries.
    /// Multi-tenant servers give each tenant its own lane so one tenant
    /// can never replay another's cached plans even on a shared cache.
    pub lane: u64,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            els: ElsOptions::default(),
            strategy: EstimatorStrategy::default(),
            join_methods: vec![JoinMethod::NestedLoop, JoinMethod::SortMerge],
            cost: CostParams::default(),
            tree_shape: TreeShape::LeftDeep,
            feedback: FeedbackMode::Off,
            lane: 0,
        }
    }
}

impl OptimizerOptions {
    /// Options for one of the paper's presets.
    pub fn preset(preset: EstimatorPreset) -> Self {
        OptimizerOptions { els: preset.els_options(), ..OptimizerOptions::default() }
    }

    /// Enable hash joins too (used by the extended experiments).
    #[must_use]
    pub fn with_hash_join(mut self) -> Self {
        if !self.join_methods.contains(&JoinMethod::Hash) {
            self.join_methods.push(JoinMethod::Hash);
        }
        self
    }

    /// Explore bushy join trees instead of left-deep only.
    #[must_use]
    pub fn with_bushy_trees(mut self) -> Self {
        self.tree_shape = TreeShape::Bushy;
        self
    }

    /// Enable indexed nested loops (a sorted index on the inner's join
    /// key). Used by the access-method ablation (experiment F6).
    #[must_use]
    pub fn with_index_nested_loop(mut self) -> Self {
        if !self.join_methods.contains(&JoinMethod::IndexNestedLoop) {
            self.join_methods.push(JoinMethod::IndexNestedLoop);
        }
        self
    }

    /// Set the runtime-feedback policy (default [`FeedbackMode::Off`]).
    #[must_use]
    pub fn with_feedback(mut self, mode: FeedbackMode) -> Self {
        self.feedback = mode;
        self
    }

    /// Plan with a different estimator (default [`EstimatorStrategy::Els`]).
    #[must_use]
    pub fn with_strategy(mut self, strategy: EstimatorStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Put these options in a distinct plan-cache lane (default 0). The
    /// lane salts [`Self::config_fingerprint`], isolating cache entries
    /// between otherwise-identical configurations.
    #[must_use]
    pub fn with_lane(mut self, lane: u64) -> Self {
        self.lane = lane;
        self
    }

    /// A fingerprint of every plan-shaping knob in this configuration:
    /// two option sets produce the same fingerprint iff switching between
    /// them could never change the chosen plan or its estimates. Plan
    /// caches must fold this into their keys — the same SQL text under a
    /// different estimator, rule or feedback mode is a different plan.
    /// Process-local (the hash is not stable across runs); never persist
    /// it.
    pub fn config_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // Every field of the struct shapes plans (estimator choice, rule,
        // closure, join methods, cost constants, tree shape, feedback), so
        // the Debug rendering of the whole value is the honest key.
        format!("{self:?}").hash(&mut h);
        h.finish()
    }
}

/// The non-ELS estimator that planned a query, retained for EXPLAIN-style
/// inspection (the ELS pipeline is always kept alongside in
/// [`OptimizedQuery::els`]).
#[derive(Debug, Clone)]
pub(crate) enum AltEstimator {
    UpperBound(UpperBoundEstimator),
    NoEstimates(NoEstimatesEstimator),
}

/// The result of optimization: an executable plan plus everything the paper
/// reports about it.
#[derive(Debug, Clone)]
pub struct OptimizedQuery {
    /// The executable physical plan.
    pub plan: QueryPlan,
    /// The chosen join order (table positions in the `FROM` list).
    pub join_order: Vec<usize>,
    /// Estimated intermediate result sizes along that order (per the
    /// planning estimator, i.e. [`Self::estimator`]).
    pub estimated_sizes: Vec<f64>,
    /// Total estimated cost in page units.
    pub estimated_cost: f64,
    /// The prepared ELS estimator (for EXPLAIN-style inspection and
    /// feedback harvesting) — prepared even when another strategy planned
    /// the query.
    pub els: Els,
    /// The alternative estimator that planned the query, when the
    /// strategy was not [`EstimatorStrategy::Els`].
    pub(crate) alt: Option<AltEstimator>,
    /// Published feedback corrections folded into this plan's estimates
    /// (0 unless the optimizer ran under [`FeedbackMode::Apply`]).
    pub corrections_applied: u64,
}

impl OptimizedQuery {
    /// The estimator whose numbers chose this plan.
    pub fn estimator(&self) -> &dyn CardinalityEstimator {
        match &self.alt {
            Some(AltEstimator::UpperBound(e)) => e,
            Some(AltEstimator::NoEstimates(e)) => e,
            None => &self.els,
        }
    }

    /// The strategy that planned this query.
    pub fn strategy(&self) -> EstimatorStrategy {
        match &self.alt {
            Some(AltEstimator::UpperBound(_)) => EstimatorStrategy::UpperBound,
            Some(AltEstimator::NoEstimates(_)) => EstimatorStrategy::NoEstimates,
            None => EstimatorStrategy::Els,
        }
    }
}

/// Optimize from raw parts: predicates + statistics + physical profiles.
/// `output` is what the plan should return.
pub fn optimize(
    predicates: &[Predicate],
    stats: &QueryStatistics,
    profiles: &[TableProfile],
    output: PlanOutput,
    options: &OptimizerOptions,
) -> OptimizerResult<OptimizedQuery> {
    optimize_with_oracle(
        predicates,
        stats,
        profiles,
        output,
        options,
        &els_core::selectivity::NoOracle,
    )
}

/// Output decorations (final sort + limit) applied to a plan after
/// optimization; they do not influence join order or method choice.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutputDecorations {
    /// `(column, descending)` final sort keys.
    pub order_by: Vec<(els_core::ColumnRef, bool)>,
    /// Row limit.
    pub limit: Option<u64>,
}

/// [`optimize`] with a selectivity oracle (histograms) for local predicates.
pub fn optimize_with_oracle(
    predicates: &[Predicate],
    stats: &QueryStatistics,
    profiles: &[TableProfile],
    output: PlanOutput,
    options: &OptimizerOptions,
    oracle: &dyn els_core::selectivity::SelectivityOracle,
) -> OptimizerResult<OptimizedQuery> {
    optimize_full(predicates, stats, profiles, output, options, oracle, &NoCorrections)
}

/// [`optimize_with_oracle`] plus a runtime-feedback correction source whose
/// published factors are multiplied into selectivities before clamping.
/// Pass [`NoCorrections`] to reproduce the uncorrected estimates exactly.
#[allow(clippy::too_many_arguments)]
pub fn optimize_full(
    predicates: &[Predicate],
    stats: &QueryStatistics,
    profiles: &[TableProfile],
    output: PlanOutput,
    options: &OptimizerOptions,
    oracle: &dyn els_core::selectivity::SelectivityOracle,
    corrections: &dyn CorrectionSource,
) -> OptimizerResult<OptimizedQuery> {
    if stats.num_tables() != profiles.len() {
        return Err(OptimizerError::Unsupported(format!(
            "statistics describe {} tables but {} profiles were supplied",
            stats.num_tables(),
            profiles.len()
        )));
    }
    let els = Els::prepare_full(predicates, stats, &options.els, oracle, corrections)?;
    let alt = match options.strategy {
        EstimatorStrategy::Els => None,
        EstimatorStrategy::UpperBound => {
            Some(AltEstimator::UpperBound(UpperBoundEstimator::new(predicates, stats)?))
        }
        EstimatorStrategy::NoEstimates => {
            Some(AltEstimator::NoEstimates(NoEstimatesEstimator::new(predicates, stats)?))
        }
    };
    let estimator: &dyn CardinalityEstimator = match &alt {
        Some(AltEstimator::UpperBound(e)) => e,
        Some(AltEstimator::NoEstimates(e)) => e,
        None => &els,
    };
    let result =
        enumerate(estimator, profiles, &options.join_methods, &options.cost, options.tree_shape)?;
    Ok(OptimizedQuery {
        plan: QueryPlan::new(result.root, output),
        join_order: result.join_order,
        estimated_sizes: result.estimated_sizes,
        estimated_cost: result.estimated_cost,
        els,
        alt,
        corrections_applied: 0,
    })
}

/// Optimize a bound SQL query against a catalog (statistics, histograms and
/// physical profiles all come from the catalog).
pub fn optimize_bound(
    query: &BoundQuery,
    catalog: &Catalog,
    options: &OptimizerOptions,
) -> OptimizerResult<OptimizedQuery> {
    let from: Vec<&str> = query.table_names.iter().map(String::as_str).collect();
    let stats = catalog.query_statistics(&from)?;
    let profiles = from
        .iter()
        .map(|name| Ok(TableProfile::of(catalog.table_data(name)?.as_ref())))
        .collect::<OptimizerResult<Vec<_>>>()?;
    let oracle = catalog.oracle(&from)?;
    let output = match &query.projection {
        BoundProjection::CountStar => PlanOutput::CountStar,
        BoundProjection::Star => PlanOutput::Star,
        BoundProjection::Columns(cols) => PlanOutput::Columns(cols.clone()),
        BoundProjection::GroupCount(cols) => PlanOutput::GroupCount(cols.clone()),
    };
    let mut optimized = if options.feedback.applies() {
        let corrections = catalog.corrections(&from)?;
        let mut o = optimize_full(
            &query.predicates,
            &stats,
            &profiles,
            output,
            options,
            &oracle,
            &corrections,
        )?;
        o.corrections_applied = corrections.applied();
        o
    } else {
        optimize_with_oracle(&query.predicates, &stats, &profiles, output, options, &oracle)?
    };
    optimized.plan.order_by = query.order_by.clone();
    optimized.plan.limit = query.limit;
    Ok(optimized)
}

/// Fetch the `FROM`-list table data for executing an optimized bound query.
pub fn bound_query_tables(
    query: &BoundQuery,
    catalog: &Catalog,
) -> OptimizerResult<Vec<Arc<Table>>> {
    query
        .table_names
        .iter()
        .map(|name| catalog.table_data(name).map_err(OptimizerError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_catalog::collect::CollectOptions;
    use els_exec::execute_plan;
    use els_sql::{bind, parse};
    use els_storage::datagen::starburst_experiment_tables;

    fn section8_catalog() -> Catalog {
        let mut c = Catalog::new();
        for t in starburst_experiment_tables(42) {
            c.register(t, &CollectOptions::default()).unwrap();
        }
        c
    }

    const SQL: &str = "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100";

    #[test]
    fn presets_have_labels_and_options() {
        for p in EstimatorPreset::all() {
            assert!(!p.label().is_empty());
        }
        assert!(!EstimatorPreset::SmNoPtc.els_options().apply_closure);
        assert!(EstimatorPreset::Els.els_options().apply_closure);
    }

    #[test]
    fn every_preset_produces_a_correct_executable_plan() {
        // Whatever the estimator believes, the chosen plan must compute the
        // true answer (100 rows survive every join).
        let catalog = section8_catalog();
        let bound = bind(&parse(SQL).unwrap(), &catalog).unwrap();
        let tables = bound_query_tables(&bound, &catalog).unwrap();
        for preset in EstimatorPreset::all() {
            let optimized =
                optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset)).unwrap();
            let out = execute_plan(&optimized.plan, &tables).unwrap();
            assert_eq!(out.count, 100, "{} got {}", preset.label(), out.count);
        }
    }

    #[test]
    fn els_estimates_100_and_sm_collapses() {
        let catalog = section8_catalog();
        let bound = bind(&parse(SQL).unwrap(), &catalog).unwrap();
        let els = optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els))
            .unwrap();
        for s in &els.estimated_sizes {
            assert!((s - 100.0).abs() < 1e-6, "{:?}", els.estimated_sizes);
        }
        let sm = optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Sm))
            .unwrap();
        assert!(sm.estimated_sizes.last().unwrap() < &1e-3, "{:?}", sm.estimated_sizes);
    }

    #[test]
    fn els_plan_is_much_cheaper_at_runtime_than_sm_plan() {
        // The headline result: the misled plan does at least an order of
        // magnitude more simulated I/O.
        let catalog = section8_catalog();
        let bound = bind(&parse(SQL).unwrap(), &catalog).unwrap();
        let tables = bound_query_tables(&bound, &catalog).unwrap();
        let run = |preset| {
            let optimized =
                optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset)).unwrap();
            execute_plan(&optimized.plan, &tables).unwrap().metrics.pages_read
        };
        let sm_pages = run(EstimatorPreset::Sm);
        let els_pages = run(EstimatorPreset::Els);
        assert!(
            sm_pages >= 10 * els_pages,
            "expected >=10x page gap, got SM={sm_pages} ELS={els_pages}"
        );
    }

    #[test]
    fn ptc_enables_early_selection() {
        // Row 1 vs row 2 of the paper's table: closure derives the filters
        // m < 100, b < 100, g < 100, so scans of M, B, G become selective
        // and join inputs shrink by orders of magnitude. Without PTC the
        // plan must push full tables through its joins (the paper's row 1
        // paid 610s for that); with PTC every join input is ~100 tuples.
        let catalog = section8_catalog();
        let bound = bind(&parse(SQL).unwrap(), &catalog).unwrap();
        let tables = bound_query_tables(&bound, &catalog).unwrap();
        let run = |preset| {
            let optimized =
                optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset)).unwrap();
            let out = execute_plan(&optimized.plan, &tables).unwrap();
            assert_eq!(out.count, 100);
            (optimized, out.metrics)
        };
        let (no_ptc_plan, no_ptc) = run(EstimatorPreset::SmNoPtc);
        let (with_ptc_plan, _) = run(EstimatorPreset::Sm);
        // Without closure only S carries a filter.
        let count_filters = |node: &els_exec::PlanNode| {
            fn rec(n: &els_exec::PlanNode, acc: &mut usize) {
                match n {
                    els_exec::PlanNode::Scan { filters, .. } => *acc += filters.len(),
                    els_exec::PlanNode::Join { left, right, .. } => {
                        rec(left, acc);
                        rec(right, acc);
                    }
                }
            }
            let mut acc = 0;
            rec(node, &mut acc);
            acc
        };
        assert_eq!(count_filters(&no_ptc_plan.plan.root), 1);
        assert_eq!(count_filters(&with_ptc_plan.plan.root), 4);
        // The closure-free plan really does push big tables through joins:
        // its sort inputs alone dwarf the whole filtered workload.
        assert!(
            no_ptc.rows_sorted > 100_000,
            "expected full-table sort inputs without PTC, got {}",
            no_ptc.rows_sorted
        );
    }

    #[test]
    fn profile_stats_shape_mismatch_is_rejected() {
        let catalog = section8_catalog();
        let bound = bind(&parse(SQL).unwrap(), &catalog).unwrap();
        let from: Vec<&str> = bound.table_names.iter().map(String::as_str).collect();
        let stats = catalog.query_statistics(&from).unwrap();
        let err = optimize(
            &bound.predicates,
            &stats,
            &[TableProfile::synthetic(1.0, 8)],
            PlanOutput::CountStar,
            &OptimizerOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, OptimizerError::Unsupported(_)));
    }

    #[test]
    fn hash_join_option_extends_methods() {
        let o = OptimizerOptions::default().with_hash_join();
        assert!(o.join_methods.contains(&JoinMethod::Hash));
        assert_eq!(o.with_hash_join().join_methods.len(), 3);
    }

    #[test]
    fn feedback_apply_with_empty_store_matches_off() {
        // The differential guarantee: Apply with zero observations takes the
        // published-correction path but finds nothing, so every estimate is
        // bit-identical to Off.
        let catalog = section8_catalog();
        let bound = bind(&parse(SQL).unwrap(), &catalog).unwrap();
        for preset in EstimatorPreset::all() {
            let off = OptimizerOptions::preset(preset);
            let apply = OptimizerOptions::preset(preset).with_feedback(FeedbackMode::Apply);
            let a = optimize_bound(&bound, &catalog, &off).unwrap();
            let b = optimize_bound(&bound, &catalog, &apply).unwrap();
            assert_eq!(a.join_order, b.join_order, "{}", preset.label());
            assert_eq!(a.estimated_sizes, b.estimated_sizes, "{}", preset.label());
            assert_eq!(a.estimated_cost, b.estimated_cost, "{}", preset.label());
            assert_eq!(b.corrections_applied, 0);
        }
    }

    #[test]
    fn published_corrections_rescale_apply_estimates() {
        use els_catalog::FeedbackKey;
        let catalog = section8_catalog();
        let bound = bind(&parse(SQL).unwrap(), &catalog).unwrap();
        let off = optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els))
            .unwrap();
        // Teach the store that the filtered S scan returns 4x the estimate;
        // one observation with full first-observation weight publishes it.
        let key = FeedbackKey::scan("S", "c0<100");
        assert!(catalog.feedback().observe(key, 100.0, 400.0, false));
        let apply =
            OptimizerOptions::preset(EstimatorPreset::Els).with_feedback(FeedbackMode::Apply);
        let corrected = optimize_bound(&bound, &catalog, &apply).unwrap();
        assert!(corrected.corrections_applied >= 1);
        let last_off = *off.estimated_sizes.last().unwrap();
        let last_on = *corrected.estimated_sizes.last().unwrap();
        assert!(
            last_on > last_off * 2.0,
            "expected corrected final estimate to grow ~4x: off={last_off} on={last_on}"
        );
    }
}
