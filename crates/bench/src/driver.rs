//! Parallel workload driver for the cache-fronted engine.
//!
//! Replays a fixed, mixed-depth Section 8 workload against an
//! [`els::engine::Engine`] — serially or across N threads with
//! [`std::thread::scope`] — and reports throughput. The workload extends
//! the paper's 4-table chain with deeper self-join variants (the repo's
//! extended-experiment idiom): those are cheap to *execute* once the
//! transitive closure has made every scan selective, but expensive to
//! *optimize* in the full bushy plan space, which is exactly the regime a
//! plan cache serves.
//!
//! Used by the `bench_engine_throughput` binary (which writes
//! `BENCH_engine_throughput.json`) and by the concurrency tests.

use std::time::{Duration, Instant};

use els::engine::Engine;
use els_optimizer::OptimizerOptions;

use crate::section8_catalog;

/// The optimizer configuration the throughput workload runs under: the
/// paper's default estimator (ELS) in the richest plan space this engine
/// has (bushy trees, all four join methods).
pub fn throughput_options() -> OptimizerOptions {
    OptimizerOptions::default().with_bushy_trees().with_hash_join().with_index_nested_loop()
}

/// A `tables`-way self-join chain over the Section 8 schema: aliases cycle
/// S, M, B, G, adjacent aliases join on their key columns, and the filter
/// `t0.s < cut` seeds the transitive closure.
pub fn chain_sql(tables: usize, cut: i64) -> String {
    assert!(tables >= 2, "a chain needs at least two tables");
    let base = [("S", "s"), ("M", "m"), ("B", "b"), ("G", "g")];
    let mut from = Vec::new();
    let mut conjuncts = Vec::new();
    for i in 0..tables {
        let (name, _) = base[i % base.len()];
        from.push(format!("{name} AS t{i}"));
    }
    for i in 1..tables {
        let (_, prev) = base[(i - 1) % base.len()];
        let (_, this) = base[i % base.len()];
        conjuncts.push(format!("t{}.{prev} = t{i}.{this}", i - 1));
    }
    conjuncts.push(format!("t0.s < {cut}"));
    format!("SELECT COUNT(*) FROM {} WHERE {}", from.join(", "), conjuncts.join(" AND "))
}

/// The mixed throughput workload: the Section 8 query itself plus chain
/// variants of increasing depth. Depth 10 in the bushy space costs tens of
/// milliseconds to optimize — the cache's bread and butter — while the
/// 4-table queries keep execution honest.
pub fn section8_throughput_workload() -> Vec<String> {
    let mut queries = vec![crate::SECTION8_SQL.to_owned()];
    for cut in [50, 200, 400] {
        queries.push(chain_sql(4, cut));
    }
    for cut in [100, 300] {
        queries.push(chain_sql(6, cut));
    }
    for cut in [100, 300] {
        queries.push(chain_sql(8, cut));
    }
    for cut in [100, 200, 300] {
        queries.push(chain_sql(10, cut));
    }
    queries
}

/// Build an engine over the Section 8 catalog with the throughput options
/// and the given plan-cache capacity (0 = the pre-cache single-shot
/// behaviour).
pub fn section8_engine(seed: u64, cache_capacity: usize) -> Engine {
    let engine = Engine::with_options(throughput_options()).cache_capacity(cache_capacity);
    for table in els_storage::datagen::starburst_experiment_tables(seed) {
        engine.register(table).expect("fresh engine accepts the experiment tables");
    }
    // Sanity-check against the long-standing catalog constructor.
    debug_assert_eq!(engine.snapshot().len(), section8_catalog(seed).len());
    engine
}

/// One replay measurement.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Total queries executed.
    pub queries: usize,
    /// Wall-clock time for the whole replay.
    pub elapsed: Duration,
    /// Per-query result counts of one workload pass (every thread and
    /// every repeat must produce these same counts).
    pub counts: Vec<u64>,
    /// Wall-clock latency of every individual query execution, in
    /// submission order (concatenated across threads for parallel replays).
    pub latencies: Vec<Duration>,
}

impl Replay {
    /// Queries per second.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Nearest-rank percentile of the per-query latencies. `p` is clamped
    /// into `0..=100` (so `-5.0` reads as the minimum and `200.0` as the
    /// maximum); a NaN `p` returns zero rather than silently reading as
    /// the minimum (`NaN as usize` is 0). Returns zero for an empty
    /// replay.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() || p.is_nan() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = (p.clamp(0.0, 100.0) / 100.0 * sorted.len() as f64).ceil() as usize;
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }
}

/// Replay the workload `repeats` times on the calling thread.
pub fn replay_serial(engine: &Engine, queries: &[String], repeats: usize) -> Replay {
    let start = Instant::now();
    let mut counts = Vec::new();
    let mut latencies = Vec::with_capacity(queries.len() * repeats);
    for repeat in 0..repeats {
        for sql in queries {
            let t0 = Instant::now();
            let out = engine.execute(sql).expect("workload queries execute");
            latencies.push(t0.elapsed());
            if repeat == 0 {
                counts.push(out.count);
            }
        }
    }
    Replay { queries: queries.len() * repeats, elapsed: start.elapsed(), counts, latencies }
}

/// Replay the workload `repeats` times on each of `threads` scoped threads
/// sharing one engine. Each thread walks the workload at a different
/// rotation so cold plans are optimized by whichever thread gets there
/// first. Panics if any two threads disagree on any query's result.
pub fn replay_parallel(
    engine: &Engine,
    queries: &[String],
    threads: usize,
    repeats: usize,
) -> Replay {
    assert!(threads >= 1);
    let start = Instant::now();
    let mut per_thread: Vec<(Vec<u64>, Vec<Duration>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let n = queries.len();
                    let mut counts = vec![0u64; n];
                    let mut latencies = Vec::with_capacity(n * repeats);
                    for repeat in 0..repeats {
                        for i in 0..n {
                            let q = (i + t) % n; // rotated start per thread
                            let t0 = Instant::now();
                            let out =
                                engine.execute(&queries[q]).expect("workload queries execute");
                            latencies.push(t0.elapsed());
                            if repeat == 0 {
                                counts[q] = out.count;
                            }
                        }
                    }
                    (counts, latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker threads do not panic")).collect()
    });
    let elapsed = start.elapsed();
    let (counts, mut latencies) = per_thread.pop().expect("at least one thread");
    for (other, other_lat) in &per_thread {
        assert_eq!(other, &counts, "threads must agree on every query result");
        latencies.extend_from_slice(other_lat);
    }
    Replay { queries: queries.len() * threads * repeats, elapsed, counts, latencies }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_sql_shapes() {
        let q = chain_sql(4, 100);
        assert!(q.contains("S AS t0"));
        assert!(q.contains("G AS t3"));
        assert!(q.contains("t0.s = t1.m"));
        assert!(q.contains("t2.b = t3.g"));
        assert!(q.ends_with("t0.s < 100"));
        // Depth 6 wraps around the schema.
        let q6 = chain_sql(6, 10);
        assert!(q6.contains("S AS t4"));
        assert!(q6.contains("t3.g = t4.s"));
    }

    #[test]
    fn workload_is_distinct_and_executable() {
        let queries = section8_throughput_workload();
        let mut unique: Vec<_> = queries.iter().map(|q| els_sql::fingerprint(q).unwrap()).collect();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), queries.len(), "workload queries must not collide");
    }

    #[test]
    fn serial_and_parallel_replays_agree() {
        // A trimmed workload keeps this test fast: correctness of the
        // full-depth workload is the throughput binary's job.
        let engine = section8_engine(42, 64);
        let queries: Vec<String> = section8_throughput_workload()
            .into_iter()
            .filter(|q| q.matches(" AS ").count() <= 4)
            .collect();
        assert!(queries.len() >= 4);
        let serial = replay_serial(&engine, &queries, 1);
        // The paper's ground truth for the Section 8 query.
        assert_eq!(serial.counts[0], 100);
        assert_eq!(serial.latencies.len(), serial.queries);
        let parallel = replay_parallel(&engine, &queries, 4, 2);
        assert_eq!(parallel.counts, serial.counts);
        assert_eq!(parallel.queries, queries.len() * 8);
        assert_eq!(parallel.latencies.len(), parallel.queries);
        assert!(engine.cache_stats().hit_rate() > 0.5);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let replay = Replay {
            queries: 4,
            elapsed: Duration::from_millis(10),
            counts: vec![],
            latencies: [4, 1, 3, 2].into_iter().map(Duration::from_millis).collect(),
        };
        assert_eq!(replay.latency_percentile(50.0), Duration::from_millis(2));
        assert_eq!(replay.latency_percentile(95.0), Duration::from_millis(4));
        assert_eq!(replay.latency_percentile(0.0), Duration::from_millis(1));
        assert_eq!(replay.latency_percentile(100.0), Duration::from_millis(4));
        let empty =
            Replay { queries: 0, elapsed: Duration::ZERO, counts: vec![], latencies: vec![] };
        assert_eq!(empty.latency_percentile(50.0), Duration::ZERO);
    }

    #[test]
    fn latency_percentile_edge_inputs_are_tamed() {
        let replay = Replay {
            queries: 4,
            elapsed: Duration::from_millis(10),
            counts: vec![],
            latencies: [4, 1, 3, 2].into_iter().map(Duration::from_millis).collect(),
        };
        // Out-of-range p clamps to the min/max rather than panicking.
        assert_eq!(replay.latency_percentile(-5.0), Duration::from_millis(1));
        assert_eq!(replay.latency_percentile(200.0), Duration::from_millis(4));
        // A NaN p is a caller bug, not "the minimum": report zero.
        assert_eq!(replay.latency_percentile(f64::NAN), Duration::ZERO);
        // A single sample is every percentile.
        let one = Replay {
            queries: 1,
            elapsed: Duration::from_millis(1),
            counts: vec![],
            latencies: vec![Duration::from_millis(7)],
        };
        assert_eq!(one.latency_percentile(0.0), Duration::from_millis(7));
        assert_eq!(one.latency_percentile(50.0), Duration::from_millis(7));
        assert_eq!(one.latency_percentile(100.0), Duration::from_millis(7));
    }
}
