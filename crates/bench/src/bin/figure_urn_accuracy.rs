//! **F2** — urn model vs proportional distinct-value estimates.
//!
//! Ablation of the paper's Section 5 design choice. A table with a
//! uniformly distributed column of `d` distinct values is reduced to a
//! random fraction of its rows (simulating a local predicate on an
//! independent column); the surviving distinct count is measured and
//! compared with the urn-model estimate `d(1−(1−1/d)^k)` and the
//! proportional estimate `d·k/n`.
//!
//! Expected shape: the urn model tracks the simulation within a percent or
//! two everywhere; proportional scaling collapses when rows-per-value is
//! high (the paper's 9933-vs-5000 example).

use els_core::urn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulate: n rows over d uniform values, keep each row with prob `frac`,
/// return surviving distinct count (mean over `trials`).
fn simulate(d: u64, n: u64, frac: f64, trials: usize, rng: &mut StdRng) -> f64 {
    let mut total = 0usize;
    for _ in 0..trials {
        let mut seen = vec![false; d as usize];
        let mut distinct = 0usize;
        for row in 0..n {
            if rng.gen::<f64>() < frac {
                let v = (row % d) as usize; // exactly uniform frequencies
                if !seen[v] {
                    seen[v] = true;
                    distinct += 1;
                }
            }
        }
        total += distinct;
    }
    total as f64 / trials as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    println!("# F2 — surviving distinct values after a restriction");
    println!("(simulation = mean of 20 random selections; urn vs proportional)\n");
    println!(
        "| {:>6} | {:>8} | {:>5} | {:>10} | {:>10} | {:>10} | {:>8} | {:>8} |",
        "d", "rows", "frac", "simulated", "urn", "prop", "urn err", "prop err"
    );
    println!(
        "|{}|",
        [
            "-".repeat(8),
            "-".repeat(10),
            "-".repeat(7),
            "-".repeat(12),
            "-".repeat(12),
            "-".repeat(12),
            "-".repeat(10),
            "-".repeat(10)
        ]
        .join("|")
    );

    for (d, per_value) in [(100u64, 10u64), (1000, 10), (10_000, 10), (10_000, 2), (1000, 100)] {
        let n = d * per_value;
        for frac in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let k = n as f64 * frac;
            let sim = simulate(d, n, frac, 20, &mut rng);
            let urn_est = urn::expected_distinct(d as f64, k).unwrap();
            let prop_est = urn::proportional_distinct(d as f64, k, n as f64).unwrap();
            let err = |est: f64| (est - sim).abs() / sim.max(1.0);
            println!(
                "| {:>6} | {:>8} | {:>5.2} | {:>10.1} | {:>10.1} | {:>10.1} | {:>7.2}% | {:>7.2}% |",
                d,
                n,
                frac,
                sim,
                urn_est,
                prop_est,
                err(urn_est) * 100.0,
                err(prop_est) * 100.0,
            );
        }
    }

    println!("\n# the paper's Section 5 numeric example");
    println!(
        "d=10000, ||R||=100000, ||R||'=50000: urn = {} (paper: 9933), proportional = {} (paper: 5000)",
        urn::expected_distinct_rounded(10_000.0, 50_000.0).unwrap(),
        urn::proportional_distinct(10_000.0, 50_000.0, 100_000.0).unwrap(),
    );
}
