//! Error type for the executor.

use std::fmt;

use els_core::ColumnRef;

/// Errors raised while building or executing a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A plan node referenced a table id with no registered data.
    UnknownTable(usize),
    /// A column reference did not resolve in an intermediate schema.
    ColumnNotInSchema(ColumnRef),
    /// Several column references did not resolve when binding an operator's
    /// filters; lists *every* missing column so a malformed plan is
    /// diagnosable in one pass.
    ColumnsNotInSchema(Vec<ColumnRef>),
    /// Underlying storage failure.
    Storage(String),
    /// A plan was structurally invalid (e.g. join key columns on the wrong
    /// side).
    InvalidPlan(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "no data registered for table {t}"),
            ExecError::ColumnNotInSchema(c) => {
                write!(f, "column {c} not present in intermediate schema")
            }
            ExecError::ColumnsNotInSchema(cs) => {
                let list: Vec<String> = cs.iter().map(ToString::to_string).collect();
                write!(f, "columns [{}] not present in intermediate schema", list.join(", "))
            }
            ExecError::Storage(m) => write!(f, "storage error: {m}"),
            ExecError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<els_storage::StorageError> for ExecError {
    fn from(e: els_storage::StorageError) -> Self {
        ExecError::Storage(e.to_string())
    }
}

/// Result alias for this crate.
pub type ExecResult<T> = Result<T, ExecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(ExecError::UnknownTable(2).to_string().contains('2'));
        assert!(ExecError::ColumnNotInSchema(ColumnRef::new(0, 1)).to_string().contains("R0.c1"));
        let multi = ExecError::ColumnsNotInSchema(vec![ColumnRef::new(0, 1), ColumnRef::new(2, 3)]);
        let text = multi.to_string();
        assert!(text.contains("R0.c1") && text.contains("R2.c3"), "{text}");
    }
}
