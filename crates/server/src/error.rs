//! Typed errors for the front door.
//!
//! Every failure a client can observe maps to exactly one variant, and
//! every variant maps to exactly one stable wire kind (the first word
//! after `ERR`), so clients — including [`crate::client::Client`] — can
//! round-trip errors without parsing prose.

use std::fmt;

use els::engine::EngineError;

/// Everything that can go wrong between a TCP connect and a query result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Admission control refused the connection: the bounded in-flight
    /// queue was full. The client saw a clean `ERR overloaded` line, not
    /// a hang — retry with backoff.
    Overloaded,
    /// The server is in cached-plan-only (degraded) mode and this query's
    /// plan was not cached; it was refused rather than optimized.
    Shed,
    /// The `HELLO` named a tenant this server does not host.
    UnknownTenant(String),
    /// The client broke the line protocol (missing `HELLO`, oversized
    /// line, bad escape).
    Protocol(String),
    /// The engine rejected or failed the query (parse, catalog,
    /// optimizer, executor) — carried through with its classification.
    Engine(EngineError),
    /// Transport failure (read/write on the socket).
    Io(String),
}

impl ServerError {
    /// The stable one-word kind used on the wire: `ERR <kind> <message>`.
    pub fn wire_kind(&self) -> &'static str {
        match self {
            ServerError::Overloaded => "overloaded",
            ServerError::Shed => "shed",
            ServerError::UnknownTenant(_) => "unknown-tenant",
            ServerError::Protocol(_) => "protocol",
            ServerError::Engine(EngineError::Sql(_)) => "sql",
            ServerError::Engine(EngineError::Catalog(_)) => "catalog",
            ServerError::Engine(EngineError::Optimizer(_)) => "optimizer",
            ServerError::Engine(EngineError::Exec(_)) => "exec",
            ServerError::Io(_) => "io",
        }
    }

    /// Rebuild a typed error from a wire `(kind, message)` pair — the
    /// client-side inverse of [`ServerError::wire_kind`]. Unknown kinds
    /// collapse to [`ServerError::Protocol`].
    pub fn from_wire(kind: &str, message: &str) -> ServerError {
        match kind {
            "overloaded" => ServerError::Overloaded,
            "shed" => ServerError::Shed,
            "unknown-tenant" => ServerError::UnknownTenant(message.to_string()),
            "protocol" => ServerError::Protocol(message.to_string()),
            "sql" => ServerError::Engine(EngineError::Sql(message.to_string())),
            "catalog" => ServerError::Engine(EngineError::Catalog(message.to_string())),
            "optimizer" => ServerError::Engine(EngineError::Optimizer(message.to_string())),
            "exec" => ServerError::Engine(EngineError::Exec(message.to_string())),
            "io" => ServerError::Io(message.to_string()),
            other => ServerError::Protocol(format!("unknown error kind `{other}`: {message}")),
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded => {
                write!(f, "server overloaded: admission queue full, retry with backoff")
            }
            ServerError::Shed => {
                write!(f, "degraded mode: serving cached plans only, query not cached")
            }
            ServerError::UnknownTenant(t) => write!(f, "unknown tenant `{t}`"),
            ServerError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServerError::Engine(e) => write!(f, "{e}"),
            ServerError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> Self {
        ServerError::Engine(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e.to_string())
    }
}

/// Result alias for this crate.
pub type ServerResult<T> = Result<T, ServerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_kinds_round_trip() {
        let cases = [
            ServerError::Overloaded,
            ServerError::Shed,
            ServerError::UnknownTenant("acme".into()),
            ServerError::Protocol("bad hello".into()),
            ServerError::Engine(EngineError::Sql("parse".into())),
            ServerError::Engine(EngineError::Catalog("dup".into())),
            ServerError::Engine(EngineError::Optimizer("boom".into())),
            ServerError::Engine(EngineError::Exec("oom".into())),
            ServerError::Io("reset".into()),
        ];
        for e in cases {
            let kind = e.wire_kind();
            let back = ServerError::from_wire(kind, &message_of(&e));
            assert_eq!(back.wire_kind(), kind, "{e:?} -> {back:?}");
        }
        assert!(matches!(ServerError::from_wire("nonsense", "x"), ServerError::Protocol(_)));
    }

    fn message_of(e: &ServerError) -> String {
        match e {
            ServerError::UnknownTenant(m) | ServerError::Protocol(m) | ServerError::Io(m) => {
                m.clone()
            }
            ServerError::Engine(
                EngineError::Sql(m)
                | EngineError::Catalog(m)
                | EngineError::Optimizer(m)
                | EngineError::Exec(m),
            ) => m.clone(),
            _ => String::new(),
        }
    }
}
