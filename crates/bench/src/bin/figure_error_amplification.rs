//! **F10** — amplification of catalog errors with the number of joins
//! (the Ioannidis & Christodoulakis [4] study, replayed).
//!
//! Rule LS is exact when its inputs are exact (F1). This figure perturbs
//! the *catalog* — every cardinality and distinct count off by a random
//! factor up to (1+ε) — and measures the resulting q-error of the LS
//! estimate against the closed form on the true statistics, per join
//! count. The analytic worst case `(1+ε)ⁿ/(1−ε)ⁿ⁻¹` is printed alongside.
//!
//! Expected shape: the Monte-Carlo median grows roughly like √n in log
//! space (independent errors partially cancel) while the worst case grows
//! exponentially — matching [4]'s conclusion that estimate quality decays
//! with join count *no matter how good the estimation algorithm is*,
//! which is why the paper insists on an algorithm that at least adds no
//! error of its own.

use els_bench::workload::q_error;
use els_bench::{chain_predicates, chain_statistics, workload::quantile};
use els_core::error_model::{perturb_statistics, worst_case_amplification};
use els_core::{exact, Els, ElsOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    const TRIALS: u64 = 200;
    let eps_values = [0.05, 0.1, 0.2];

    println!("# F10 — q-error of Rule LS under perturbed catalogs ({TRIALS} trials)");
    println!("(truth = Equation 3 on exact statistics; worst = (1+ε)^n/(1−ε)^(n−1))\n");
    println!(
        "| {:>2} | {:>4} | {:>9} | {:>9} | {:>9} | {:>11} |",
        "n", "ε", "median q", "p90 q", "max q", "worst case"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|",
        "-".repeat(4),
        "-".repeat(6),
        "-".repeat(11),
        "-".repeat(11),
        "-".repeat(11),
        "-".repeat(13)
    );

    for n in [2usize, 4, 6, 8, 10] {
        for &eps in &eps_values {
            let mut qs = Vec::with_capacity(TRIALS as usize);
            let mut rng = StdRng::seed_from_u64(4 + n as u64);
            for trial in 0..TRIALS {
                // Random exact catalog.
                let dims: Vec<(f64, f64)> = (0..n)
                    .map(|_| {
                        let d = rng.gen_range(10..2000) as f64;
                        (d * rng.gen_range(1..20) as f64, d)
                    })
                    .collect();
                let truth = exact::n_way(&dims);
                let stats = chain_statistics(&dims);
                let preds = chain_predicates(n);
                let perturbed = perturb_statistics(&stats, eps, trial * 1000 + n as u64);
                let els = Els::prepare(&preds, &perturbed, &ElsOptions::default()).unwrap();
                let order: Vec<usize> = (0..n).collect();
                let est = els.estimate_final(&order).unwrap();
                qs.push(q_error(est, truth));
            }
            qs.sort_by(f64::total_cmp);
            println!(
                "| {:>2} | {:>4.2} | {:>9.3} | {:>9.3} | {:>9.3} | {:>11.3} |",
                n,
                eps,
                quantile(&qs, 0.5),
                quantile(&qs, 0.9),
                quantile(&qs, 1.0),
                worst_case_amplification(n, eps, eps),
            );
        }
    }
}
