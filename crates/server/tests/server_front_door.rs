//! End-to-end failure-path coverage for the TCP front door: malformed
//! SQL, mid-result disconnects, tenant isolation, admission rejection,
//! and cached-plan-only shedding — all over real loopback sockets.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use els::engine::{Engine, EngineError};
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};
use els_server::{serve, Client, ServerConfig, ServerError, Tenants};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Two tenants, same table name, different contents: the sharpest probe
/// for catalog or plan-cache bleed-through.
fn two_tenant_server(config: ServerConfig) -> els_server::ServerHandle {
    let tenants = Tenants::isolated(&["alpha", "beta"], 256).unwrap();
    for (name, rows, seed) in [("alpha", 1000usize, 1u64), ("beta", 500, 2)] {
        tenants
            .resolve(name)
            .unwrap()
            .generate(
                TableSpec::new("t", rows)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                seed,
            )
            .unwrap();
    }
    serve("127.0.0.1:0", tenants, config).unwrap()
}

fn wait_for_depth(handle: &els_server::ServerHandle, depth: usize) {
    for _ in 0..400 {
        if handle.queue_depth() >= depth {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("queue depth never reached {depth}");
}

#[test]
fn malformed_sql_answers_typed_error_and_keeps_the_connection() {
    let handle = two_tenant_server(ServerConfig::default());
    let mut c = Client::connect(handle.addr(), "alpha", TIMEOUT).unwrap();
    let err = c.query("THIS IS NOT SQL").unwrap_err();
    assert!(matches!(err, ServerError::Engine(EngineError::Sql(_))), "{err:?}");
    // Same connection, next line: still served.
    let reply = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(reply.count, 1000);
    // A missing table is a typed error too, and still not fatal.
    let err = c.query("SELECT COUNT(*) FROM nope").unwrap_err();
    assert!(matches!(err, ServerError::Engine(EngineError::Sql(_))), "{err:?}");
    assert_eq!(c.query("SELECT COUNT(*) FROM t WHERE k < 10").unwrap().count, 10);
    c.quit();
    let counters = handle.counters();
    assert!(counters.queries_ok >= 2 && counters.queries_err >= 2, "{counters:?}");
    handle.shutdown();
}

#[test]
fn disconnect_mid_result_leaves_the_engine_serving_others() {
    let handle = two_tenant_server(ServerConfig { workers: 2, ..ServerConfig::default() });
    // A projection with a real row stream, so the server is mid-result
    // when the socket dies.
    let rude = Client::connect(handle.addr(), "alpha", TIMEOUT).unwrap();
    rude.fire_and_hang_up("SELECT t.k FROM t WHERE k < 900").unwrap();
    // The polite client gets full service throughout.
    let mut polite = Client::connect(handle.addr(), "beta", TIMEOUT).unwrap();
    for _ in 0..5 {
        assert_eq!(polite.query("SELECT COUNT(*) FROM t").unwrap().count, 500);
    }
    let rows = polite.query("SELECT t.k FROM t WHERE k < 3").unwrap();
    assert_eq!(rows.rows.len(), 3);
    polite.quit();
    handle.shutdown();
}

#[test]
fn tenants_never_observe_each_others_tables_or_plans() {
    let handle = two_tenant_server(ServerConfig::default());
    let addr = handle.addr();
    // Concurrent interleaved load from both tenants on one engine box.
    let threads: Vec<_> = [("alpha", 1000u64), ("beta", 500u64)]
        .into_iter()
        .map(|(tenant, expected)| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, tenant, TIMEOUT).unwrap();
                let mut cached_seen = false;
                for _ in 0..20 {
                    let reply = c.query("SELECT COUNT(*) FROM t").unwrap();
                    assert_eq!(reply.count, expected, "tenant {tenant} saw a foreign count");
                    cached_seen |= reply.cached;
                }
                c.quit();
                cached_seen
            })
        })
        .collect();
    for t in threads {
        assert!(t.join().unwrap(), "repeated identical SQL should hit the tenant's own lane");
    }
    // A tenant this server does not host is turned away at HELLO.
    let err = Client::connect(addr, "gamma", TIMEOUT).unwrap_err();
    assert!(matches!(err, ServerError::UnknownTenant(_)), "{err:?}");
    handle.shutdown();
}

#[test]
fn admission_full_rejects_with_typed_overloaded_and_never_hangs() {
    // One worker, one queue slot: the third concurrent connection must be
    // rejected at the door.
    let handle = two_tenant_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        shed_watermark: 1,
        ..ServerConfig::default()
    });
    // Occupy the single worker with a live connection...
    let mut held = Client::connect(handle.addr(), "alpha", TIMEOUT).unwrap();
    assert_eq!(held.query("SELECT COUNT(*) FROM t").unwrap().count, 1000);
    // ...fill the queue with a raw connection that never speaks...
    let parked = TcpStream::connect(handle.addr()).unwrap();
    wait_for_depth(&handle, 1);
    // ...and watch the next client get a clean, typed rejection.
    let err = Client::connect(handle.addr(), "alpha", TIMEOUT).unwrap_err();
    assert!(matches!(err, ServerError::Overloaded), "{err:?}");
    assert!(handle.counters().rejected >= 1);
    drop(parked);
    held.quit();
    handle.shutdown();
}

#[test]
fn overload_sheds_to_cached_plan_only_service() {
    let handle = two_tenant_server(ServerConfig {
        workers: 1,
        queue_depth: 4,
        shed_watermark: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(handle.addr(), "alpha", TIMEOUT).unwrap();
    // Warm the cache while unloaded.
    assert!(!c.query("SELECT COUNT(*) FROM t").unwrap().cached);
    assert!(c.query("SELECT COUNT(*) FROM t").unwrap().cached);
    // Park a connection in the queue: depth >= watermark -> shed mode.
    let parked = TcpStream::connect(handle.addr()).unwrap();
    wait_for_depth(&handle, 1);
    // Cached plans still serve; uncached queries are refused, typed.
    let reply = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert!(reply.cached && reply.count == 1000, "{reply:?}");
    let err = c.query("SELECT COUNT(*) FROM t WHERE k < 123").unwrap_err();
    assert!(matches!(err, ServerError::Shed), "{err:?}");
    // Relieve the pressure. The single worker serves connections whole,
    // so the parked socket drains only once `c` hangs up; the next
    // connection then gets full (unshed) service again.
    drop(parked);
    c.quit();
    let mut c2 = Client::connect(handle.addr(), "alpha", TIMEOUT).unwrap();
    assert_eq!(c2.query("SELECT COUNT(*) FROM t WHERE k < 123").unwrap().count, 123);
    let counters = handle.counters();
    assert!(counters.shed >= 1, "{counters:?}");
    c2.quit();
    handle.shutdown();
}

#[test]
fn garbage_handshake_is_refused_without_harming_the_server() {
    let handle = two_tenant_server(ServerConfig::default());
    // Speak garbage instead of HELLO.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.set_read_timeout(Some(TIMEOUT)).unwrap();
        writeln!(raw, "GET / HTTP/1.1").unwrap();
        raw.flush().unwrap();
        let mut line = String::new();
        BufReader::new(raw).read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR protocol"), "{line:?}");
    }
    // The server is unaffected.
    let mut c = Client::connect(handle.addr(), "beta", TIMEOUT).unwrap();
    assert_eq!(c.query("SELECT COUNT(*) FROM t").unwrap().count, 500);
    c.quit();
    handle.shutdown();
}

#[test]
fn shared_cache_pressure_stays_lane_correct() {
    // Tiny shared cache: tenants evict each other's entries, but a hit
    // must still always be a *lane-local* hit.
    let tenants = Tenants::isolated(&["alpha", "beta"], 2).unwrap();
    for (name, rows, seed) in [("alpha", 300usize, 3u64), ("beta", 700, 4)] {
        tenants
            .resolve(name)
            .unwrap()
            .generate(
                TableSpec::new("t", rows)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                seed,
            )
            .unwrap();
    }
    let handle = serve("127.0.0.1:0", tenants, ServerConfig::default()).unwrap();
    let mut a = Client::connect(handle.addr(), "alpha", TIMEOUT).unwrap();
    let mut b = Client::connect(handle.addr(), "beta", TIMEOUT).unwrap();
    for i in 0..10 {
        let sql = format!("SELECT COUNT(*) FROM t WHERE k < {}", 50 + i);
        let ra = a.query(&sql).unwrap();
        let rb = b.query(&sql).unwrap();
        // Under eviction churn a reply may or may not be cached, but the
        // answers must stay tenant-correct throughout.
        assert_eq!(ra.count, 50 + i);
        assert_eq!(rb.count, 50 + i);
    }
    a.quit();
    b.quit();
    handle.shutdown();
}

/// A sanity check that `Engine`-level lane isolation holds under the
/// exact shared-cache shape `Tenants::isolated` builds (belt to the
/// engine unit test's braces).
#[test]
fn engine_lane_isolation_under_shared_cache() {
    let tenants = Tenants::isolated(&["alpha", "beta"], 64).unwrap();
    let alpha: Arc<Engine> = tenants.resolve("alpha").unwrap();
    let beta: Arc<Engine> = tenants.resolve("beta").unwrap();
    for (engine, rows, seed) in [(&alpha, 100usize, 5u64), (&beta, 200, 6)] {
        engine
            .generate(
                TableSpec::new("t", rows)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                seed,
            )
            .unwrap();
    }
    let sql = "SELECT COUNT(*) FROM t";
    assert!(!alpha.execute(sql).unwrap().cache_hit);
    assert!(!beta.execute(sql).unwrap().cache_hit, "beta must not hit alpha's entry");
    assert_eq!(alpha.execute(sql).unwrap().count, 100);
    assert_eq!(beta.execute(sql).unwrap().count, 200);
    assert!(alpha.execute_if_cached(sql).unwrap().unwrap().cache_hit);
}
