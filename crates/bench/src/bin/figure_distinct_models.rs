//! **F5** — how the distinct-reduction model (urn vs proportional) changes
//! *join* estimates, not just column statistics.
//!
//! Setup: table R (‖R‖ rows) carries a filter on column `a` with a swept
//! selectivity, and joins table S on column `b` (d_b distinct values,
//! untouched by the filter). Estimating ‖σ(R) ⋈ S‖ requires d_b′ — the
//! distinct values of `b` that survive the filter — which is exactly where
//! Section 5's urn model and the common proportional estimate diverge.
//! Truth is measured by executing the query.
//!
//! Expected shape: the urn-model estimate tracks the truth across the whole
//! sweep; the proportional model increasingly *underestimates* as the
//! filter tightens (it assumes distinct values die linearly with rows,
//! while duplicates actually shield them) — and an underestimated d_b′
//! *overestimates* the join (smaller max(d) denominator), so the
//! proportional column drifts above 1.

use els_catalog::collect::CollectOptions;
use els_catalog::Catalog;
use els_core::local_effects::DistinctReduction;
use els_exec::execute_plan;
use els_optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els_sql::{bind, parse};
use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 20_000usize;
    let d_b = 200u64;
    let s_rows = 50usize; // S's domain is a subset of b's (containment)
    let mut catalog = Catalog::new();
    catalog.register(
        TableSpec::new("R", rows)
            .column(ColumnSpec::new("a", Distribution::SequentialInt { start: 0 }))
            .column(ColumnSpec::new("b", Distribution::UniformInt { lo: 0, hi: d_b as i64 - 1 }))
            .generate(31),
        &CollectOptions::default(),
    )?;
    catalog.register(
        TableSpec::new("S", s_rows)
            .column(ColumnSpec::new("id", Distribution::SequentialInt { start: 0 }))
            .generate(32),
        &CollectOptions::default(),
    )?;

    println!("# F5 — join estimate quality under urn vs proportional d' reduction");
    println!(
        "(R: {rows} rows, d_b = {d_b}; S: {s_rows} rows; query: R ⋈ S on b = id, filter a < c)\n"
    );
    println!(
        "| {:>9} | {:>10} | {:>12} | {:>12} | {:>9} | {:>9} |",
        "filter", "truth", "urn est", "prop est", "urn/true", "prop/true"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|",
        "-".repeat(11),
        "-".repeat(12),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(11),
        "-".repeat(11)
    );

    for frac in [0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 0.9] {
        let cut = (rows as f64 * frac) as i64;
        let sql = format!("SELECT COUNT(*) FROM R, S WHERE R.b = S.id AND R.a < {cut}");
        let bound = bind(&parse(&sql)?, &catalog)?;
        let tables = bound_query_tables(&bound, &catalog)?;
        let mut estimates = Vec::new();
        let mut truth = 0u64;
        for reduction in [DistinctReduction::UrnModel, DistinctReduction::Proportional] {
            let mut options = OptimizerOptions::preset(EstimatorPreset::Els);
            options.els = options.els.with_distinct_reduction(reduction);
            let optimized = optimize_bound(&bound, &catalog, &options)?;
            estimates.push(*optimized.estimated_sizes.last().unwrap());
            truth = execute_plan(&optimized.plan, &tables)?.count;
        }
        let t = truth as f64;
        println!(
            "| {:>8.0}% | {:>10} | {:>12.1} | {:>12.1} | {:>9.3} | {:>9.3} |",
            frac * 100.0,
            truth,
            estimates[0],
            estimates[1],
            estimates[0] / t,
            estimates[1] / t,
        );
    }
    println!(
        "\nnote: the join selectivity is 1/max(d_b', d_id), so the d_b' model only matters \
         once the filter drives d_b' below d_id = {s_rows} — exactly where the proportional \
         model collapses far too early. The urn column's residual drift above 1 at tight \
         filters is the containment assumption, common to both models."
    );
    Ok(())
}
