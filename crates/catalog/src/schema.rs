//! Table and column definitions.

use els_storage::{DataType, Table};

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within its table).
    pub name: String,
    /// Stored data type.
    pub data_type: DataType,
}

/// Definition of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Columns in schema order.
    pub columns: Vec<ColumnDef>,
}

impl TableDef {
    /// Derive a definition from stored data.
    pub fn from_table(table: &Table) -> Self {
        let columns = table
            .column_names()
            .iter()
            .zip(table.columns())
            .map(|(name, col)| ColumnDef { name: name.clone(), data_type: col.data_type() })
            .collect();
        TableDef { name: table.name().to_owned(), columns }
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::ColumnVector;

    #[test]
    fn derives_from_stored_table() {
        let t = Table::new(
            "orders",
            vec![
                ("id".into(), ColumnVector::from_ints([1, 2])),
                ("tag".into(), ColumnVector::from_strs(["a", "b"])),
            ],
        )
        .unwrap();
        let def = TableDef::from_table(&t);
        assert_eq!(def.name, "orders");
        assert_eq!(def.num_columns(), 2);
        assert_eq!(def.columns[0], ColumnDef { name: "id".into(), data_type: DataType::Int });
        assert_eq!(def.column_index("tag"), Some(1));
        assert_eq!(def.column_index("nope"), None);
    }
}
