//! Execution metrics.
//!
//! The paper reports elapsed seconds; this engine additionally counts
//! logical work (tuples, comparisons) and *simulated page reads* under the
//! storage page model so plan quality can be compared deterministically,
//! independent of machine noise. Nested-loops inner rescans are charged
//! their full page count per outer tuple — the cost structure that makes
//! misplaced giant tables expensive, exactly the failure mode the paper's
//! experiment demonstrates.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters accumulated while executing one plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecMetrics {
    /// Tuples read out of base tables.
    pub tuples_scanned: u64,
    /// Logical page reads (base scans + NL inner rescans), regardless of
    /// buffering.
    pub pages_read: u64,
    /// Physical page reads of *base tables*: equals the base-table share of
    /// `pages_read` when unbuffered, less when a buffer pool absorbs
    /// rescans (see [`crate::buffer`]). Intermediate-result "pages" are
    /// memory-resident and never counted here.
    pub physical_pages_read: u64,
    /// Tuples produced by all operators.
    pub tuples_emitted: u64,
    /// Key comparisons performed by joins and sorts.
    pub comparisons: u64,
    /// Rows passed through sort operators.
    pub rows_sorted: u64,
    /// Hash-table probes.
    pub hash_probes: u64,
    /// Rows examined by vectorized filter kernels (candidate rows per
    /// kernel invocation; equals `comparisons` charged by the kernels).
    pub kernel_rows: u64,
    /// In-place selection-vector compactions: each conjunct after the first
    /// reuses the scan's selection vector instead of materializing rows.
    pub sel_reuses: u64,
    /// Probe-side morsels dispatched to parallel join workers.
    pub morsels: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl ExecMetrics {
    /// Merge another metrics record into this one (durations add).
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.tuples_scanned += other.tuples_scanned;
        self.pages_read += other.pages_read;
        self.physical_pages_read += other.physical_pages_read;
        self.tuples_emitted += other.tuples_emitted;
        self.comparisons += other.comparisons;
        self.rows_sorted += other.rows_sorted;
        self.hash_probes += other.hash_probes;
        self.kernel_rows += other.kernel_rows;
        self.sel_reuses += other.sel_reuses;
        self.morsels += other.morsels;
        self.elapsed += other.elapsed;
    }
}

impl fmt::Display for ExecMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} pages={} phys={} emitted={} cmps={} sorted={} probes={} kernel={} \
             selreuse={} morsels={} elapsed={:?}",
            self.tuples_scanned,
            self.pages_read,
            self.physical_pages_read,
            self.tuples_emitted,
            self.comparisons,
            self.rows_sorted,
            self.hash_probes,
            self.kernel_rows,
            self.sel_reuses,
            self.morsels,
            self.elapsed
        )
    }
}

/// Thread-safe counters for the cache-fronted engine: plan-cache traffic
/// plus how often the optimizer's join enumeration actually ran. The
/// per-query [`ExecMetrics`] above stays a plain value; these are the
/// *shared* counters many serving threads bump concurrently, so they are
/// atomics behind `&self`.
///
/// The cache counters are per-cache instances (each
/// `els-optimizer` plan cache owns one); the enumeration counter is
/// process-wide (see [`record_enumeration`]) because enumeration happens
/// far below any engine object.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Plan-cache lookups answered from the cache.
    pub hits: AtomicU64,
    /// Plan-cache lookups that had to optimize.
    pub misses: AtomicU64,
    /// Entries evicted by the capacity bound (LRU).
    pub evictions: AtomicU64,
    /// Entries dropped because their catalog epoch went stale.
    pub invalidations: AtomicU64,
}

impl EngineCounters {
    /// A zeroed counter set.
    pub fn new() -> EngineCounters {
        EngineCounters::default()
    }

    /// A consistent-enough point-in-time copy (each counter is read
    /// atomically; the set is not a single snapshot, which is fine for
    /// monitoring).
    pub fn snapshot(&self) -> EngineCountersSnapshot {
        EngineCountersSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`EngineCounters`] for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCountersSnapshot {
    /// Plan-cache hits.
    pub hits: u64,
    /// Plan-cache misses.
    pub misses: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Stale-epoch invalidations.
    pub invalidations: u64,
}

impl EngineCountersSnapshot {
    /// Hit fraction of all lookups (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for EngineCountersSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} invalidations={} hit_rate={:.1}%",
            self.hits,
            self.misses,
            self.evictions,
            self.invalidations,
            self.hit_rate() * 100.0
        )
    }
}

/// Process-wide count of join-enumeration runs. The benchmark acceptance
/// check "cache hits skip `enumerate()`" needs an observable signal from
/// inside the optimizer; `els-optimizer` depends on this crate, so the
/// counter lives here next to the other metrics.
static ENUMERATIONS: AtomicU64 = AtomicU64::new(0);

/// Record one join-enumeration run (called by `els-optimizer`).
pub fn record_enumeration() {
    ENUMERATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Total join-enumeration runs in this process so far. Compare before/after
/// deltas rather than absolute values: any thread may optimize concurrently.
pub fn enumerations() -> u64 {
    ENUMERATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_everything() {
        let mut a = ExecMetrics {
            tuples_scanned: 1,
            pages_read: 2,
            physical_pages_read: 2,
            tuples_emitted: 3,
            comparisons: 4,
            rows_sorted: 5,
            hash_probes: 6,
            kernel_rows: 7,
            sel_reuses: 8,
            morsels: 9,
            elapsed: Duration::from_millis(10),
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.tuples_scanned, 2);
        assert_eq!(a.pages_read, 4);
        assert_eq!(a.comparisons, 8);
        assert_eq!(a.kernel_rows, 14);
        assert_eq!(a.sel_reuses, 16);
        assert_eq!(a.morsels, 18);
        assert_eq!(a.elapsed, Duration::from_millis(20));
    }

    #[test]
    fn display_is_one_line() {
        let m = ExecMetrics::default();
        let s = m.to_string();
        assert!(s.contains("pages=0"));
        assert!(!s.contains('\n'));
    }

    #[test]
    fn counters_snapshot_and_hit_rate() {
        let c = EngineCounters::new();
        c.hits.fetch_add(3, Ordering::Relaxed);
        c.misses.fetch_add(1, Ordering::Relaxed);
        c.evictions.fetch_add(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.invalidations, 0);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(EngineCountersSnapshot::default().hit_rate(), 0.0);
        assert!(s.to_string().contains("hit_rate=75.0%"));
    }

    #[test]
    fn enumeration_counter_is_monotonic() {
        let before = enumerations();
        record_enumeration();
        record_enumeration();
        assert!(enumerations() >= before + 2);
    }
}
