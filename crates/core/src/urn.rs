//! The urn model for distinct-value reduction (paper, Section 5).
//!
//! Selecting `k` tuples out of a table whose column `x` has `d` distinct
//! values is modelled as throwing `k` balls uniformly into `d` urns; the
//! expected number of non-empty urns,
//!
//! ```text
//! E[d'] = d · (1 − (1 − 1/d)^k)
//! ```
//!
//! is the expected column cardinality of `x` among the selected tuples. The
//! paper contrasts this with the common proportional estimate
//! `d' = d · k/‖R‖`, which can be badly wrong: for d=10000, ‖R‖=100000 and
//! k=50000, the urn model gives 9933 while proportional scaling gives 5000.
//!
//! The paper rounds the expectation *up* (its Section 6 example evaluates
//! `10·(1−0.9²⁰) = 8.78…` and uses 9), so [`expected_distinct_rounded`]
//! applies a ceiling.
//!
//! # Input validation
//!
//! NaN, infinite or negative inputs are *degenerate*: the model has no
//! answer for them, and the old behaviour of silently returning `0.0` let a
//! corrupted statistic propagate through Step 4 as a confident zero estimate
//! with no signal anywhere. Every function here now returns
//! [`ElsError::DegenerateStats`] for such inputs. Exact zero stays a valid
//! boundary (an empty selection holds zero distinct values).

use crate::error::{ElsError, ElsResult};
use crate::float::exactly_zero;

/// Reject NaN, infinite and negative model inputs with a typed error.
fn check_input(name: &str, v: f64) -> ElsResult<()> {
    if !v.is_finite() || v < 0.0 {
        return Err(ElsError::DegenerateStats(format!(
            "{name} must be finite and non-negative, got {v}"
        )));
    }
    Ok(())
}

/// Expected number of non-empty urns after throwing `balls` balls uniformly
/// into `urns` urns, as a real number.
///
/// Zero urns or zero balls give 0 (an empty selection), and a huge ball
/// count saturates at `urns`; NaN, infinite or negative inputs are an
/// [`ElsError::DegenerateStats`] error. Computation goes through
/// `exp(balls·ln(1−1/urns))` so it is stable for the large ball counts that
/// arise from table cardinalities (naive `powf` on `(1−1/d)` is fine for
/// small exponents but loses precision when `d` is large; `ln_1p` keeps the
/// full significand).
/// # Examples
///
/// The paper's Section 5 numbers:
///
/// ```
/// use els_core::urn::expected_distinct_rounded;
/// assert_eq!(expected_distinct_rounded(10_000.0, 50_000.0).unwrap(), 9933.0);
/// ```
pub fn expected_distinct(urns: f64, balls: f64) -> ElsResult<f64> {
    check_input("urn count", urns)?;
    check_input("ball count", balls)?;
    if exactly_zero(urns) || exactly_zero(balls) {
        return Ok(0.0);
    }
    if urns <= 1.0 {
        // A single urn is hit by the first ball.
        return Ok(urns.min(1.0));
    }
    // (1 - 1/urns)^balls = exp(balls * ln(1 - 1/urns)), via ln_1p for
    // precision when 1/urns is tiny.
    let log_miss = (-1.0 / urns).ln_1p();
    let p_empty = (balls * log_miss).exp();
    Ok(urns * (1.0 - p_empty))
}

/// The urn estimate rounded up to an integer, matching the ceilings the
/// paper applies in Sections 5 and 6. The result never exceeds `urns` or
/// `balls` after their own ceilings (rounding must not invent an extra
/// distinct value, nor more distinct values than selected tuples — the
/// bare `ceil` used to exceed a fractional ball count, e.g. 10 urns and
/// 2.5 balls rounded to 3 > 2.5).
pub fn expected_distinct_rounded(urns: f64, balls: f64) -> ElsResult<f64> {
    Ok(expected_distinct(urns, balls)?.ceil().min(urns.ceil()).min(balls.ceil()))
}

/// The proportional alternative `d' = d · (k/n)` the paper argues against
/// (Section 5). Exposed for the ablation study (experiment F2). `n` is the
/// original table cardinality and `k` the number of selected tuples.
///
/// Out-of-range inputs are clamped rather than trusted: `k > n` (a
/// selection claiming more tuples than the table holds) caps the ratio at
/// 1, and the result never exceeds either `k` (can't keep more distinct
/// values than tuples) or `d` (can't keep more than existed). Both
/// overflows arise in practice from sampled or feedback-corrected
/// statistics that drift out of sync with each other; before this clamp,
/// `d = 100, k = 5, n = 10` returned 50 distinct values from a 5-tuple
/// selection.
pub fn proportional_distinct(d: f64, k: f64, n: f64) -> ElsResult<f64> {
    check_input("distinct count", d)?;
    check_input("selected tuple count", k)?;
    check_input("table cardinality", n)?;
    if exactly_zero(n) || exactly_zero(d) || exactly_zero(k) {
        return Ok(0.0);
    }
    Ok((d * (k / n).min(1.0)).min(k).min(d).max(1.0_f64.min(d).min(k)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section5_example() {
        // d_x = 10000, ||R||' = 50000 -> 9933 (urn) vs 5000 (proportional).
        let urn = expected_distinct_rounded(10_000.0, 50_000.0).unwrap();
        assert_eq!(urn, 9933.0);
        let prop = proportional_distinct(10_000.0, 50_000.0, 100_000.0).unwrap();
        assert_eq!(prop, 5000.0);
    }

    #[test]
    fn paper_section6_example() {
        // 10 * (1 - 0.9^20) = 8.78... -> 9 after the paper's ceiling.
        assert_eq!(expected_distinct_rounded(10.0, 20.0).unwrap(), 9.0);
    }

    #[test]
    fn full_selection_keeps_all_distinct_values() {
        // ||R||' = ||R||: the paper notes d' ≈ d. With the ceiling the
        // estimate is exactly d.
        assert_eq!(expected_distinct_rounded(10_000.0, 100_000.0).unwrap(), 10_000.0);
    }

    #[test]
    fn zero_inputs_give_zero() {
        assert_eq!(expected_distinct(0.0, 10.0).unwrap(), 0.0);
        assert_eq!(expected_distinct(10.0, 0.0).unwrap(), 0.0);
        assert_eq!(proportional_distinct(0.0, 1.0, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn nan_and_negative_inputs_are_typed_errors() {
        for (u, b) in [
            (f64::NAN, 5.0),
            (5.0, f64::NAN),
            (-3.0, 5.0),
            (5.0, -3.0),
            (f64::INFINITY, 5.0),
            (5.0, f64::NEG_INFINITY),
        ] {
            assert!(
                matches!(expected_distinct(u, b), Err(ElsError::DegenerateStats(_))),
                "expected_distinct({u}, {b}) must be a DegenerateStats error"
            );
            assert!(
                matches!(expected_distinct_rounded(u, b), Err(ElsError::DegenerateStats(_))),
                "expected_distinct_rounded({u}, {b}) must be a DegenerateStats error"
            );
        }
        for (d, k, n) in [(f64::NAN, 1.0, 1.0), (1.0, -2.0, 1.0), (1.0, 1.0, f64::INFINITY)] {
            assert!(
                matches!(proportional_distinct(d, k, n), Err(ElsError::DegenerateStats(_))),
                "proportional_distinct({d}, {k}, {n}) must be a DegenerateStats error"
            );
        }
    }

    #[test]
    fn degenerate_errors_name_the_offending_input() {
        let e = expected_distinct(f64::NAN, 5.0).unwrap_err();
        assert!(e.to_string().contains("urn count"), "{e}");
        let e = expected_distinct(5.0, -1.0).unwrap_err();
        assert!(e.to_string().contains("ball count"), "{e}");
    }

    #[test]
    fn single_urn_saturates_at_one() {
        assert_eq!(expected_distinct(1.0, 100.0).unwrap(), 1.0);
        assert_eq!(expected_distinct_rounded(1.0, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn monotone_in_balls() {
        let mut prev = 0.0;
        for balls in [1.0, 10.0, 100.0, 1_000.0, 10_000.0] {
            let cur = expected_distinct(500.0, balls).unwrap();
            assert!(cur >= prev, "urn estimate must grow with ball count");
            prev = cur;
        }
    }

    #[test]
    fn monotone_in_urns() {
        let a = expected_distinct(10.0, 50.0).unwrap();
        let b = expected_distinct(100.0, 50.0).unwrap();
        assert!(b > a);
    }

    #[test]
    fn never_exceeds_urns_or_balls() {
        for (u, b) in [(10.0, 3.0), (3.0, 10.0), (1e6, 1e6), (7.0, 7.0)] {
            let e = expected_distinct(u, b).unwrap();
            assert!(e <= u + 1e-9, "estimate {e} exceeds urn count {u}");
            assert!(e <= b + 1e-9, "estimate {e} exceeds ball count {b}");
        }
    }

    #[test]
    fn rounded_never_exceeds_urns() {
        assert_eq!(expected_distinct_rounded(10.0, 1e9).unwrap(), 10.0);
    }

    #[test]
    fn stable_for_large_populations() {
        // d = 1e9, k = 1e9: expectation is d(1 - e^{-1}) ≈ 0.632 d. A naive
        // powf evaluation drifts here; ln_1p keeps it tight.
        let e = expected_distinct(1e9, 1e9).unwrap();
        let expected = 1e9 * (1.0 - (-1.0f64).exp());
        assert!((e - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn few_balls_into_many_urns_is_almost_ball_count() {
        // With k ≪ d collisions are rare: expect ≈ k.
        let e = expected_distinct(1e8, 100.0).unwrap();
        assert!((e - 100.0).abs() < 0.01);
    }

    #[test]
    fn rounded_never_exceeds_fractional_ball_count_ceiling() {
        // 10 urns, 2.5 balls: the expectation is ≈ 2.4; the bare ceil used
        // to return 3 with no relation to the ball count. The clamp keeps
        // the result within ceil(balls).
        let e = expected_distinct_rounded(10.0, 2.5).unwrap();
        assert!(e <= 3.0, "rounded estimate {e} exceeds ceil of ball count");
        assert_eq!(expected_distinct_rounded(1e6, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn proportional_clamps_overselection_and_excess_distincts() {
        // k > n: a selection cannot keep more distinct values than tuples.
        assert_eq!(proportional_distinct(100.0, 5.0, 10.0).unwrap(), 5.0);
        // k > n with the ratio capped at 1: result stays ≤ d.
        assert_eq!(proportional_distinct(100.0, 5_000.0, 10.0).unwrap(), 100.0);
        // d > n (inconsistent stats): still bounded by the selection size.
        assert_eq!(proportional_distinct(1_000.0, 100.0, 100.0).unwrap(), 100.0);
    }

    proptest::proptest! {
        #[test]
        fn urn_bounds_hold(urns in 1.0f64..1e6, balls in 0.0f64..1e7) {
            let e = expected_distinct(urns, balls).unwrap();
            proptest::prop_assert!(e >= 0.0);
            proptest::prop_assert!(e <= urns + 1e-6);
            proptest::prop_assert!(e <= balls + 1e-6);
        }

        #[test]
        fn rounded_bounds_hold(urns in 0.0f64..1e6, balls in 0.0f64..1e7) {
            let e = expected_distinct_rounded(urns, balls).unwrap();
            proptest::prop_assert!(e >= 0.0);
            proptest::prop_assert!(e <= urns.ceil() + 1e-6);
            proptest::prop_assert!(e <= balls.ceil() + 1e-6);
        }

        #[test]
        fn proportional_bounds_hold(
            d in 0.0f64..1e6,
            k in 0.0f64..1e7,
            n in 0.0f64..1e6,
        ) {
            // Deliberately covers k > n and d > n: the clamp must hold for
            // out-of-range inputs, not just consistent statistics.
            let e = proportional_distinct(d, k, n).unwrap();
            proptest::prop_assert!(e >= 0.0);
            proptest::prop_assert!(e <= d + 1e-6, "estimate {e} exceeds distinct count {d}");
            proptest::prop_assert!(e <= k + 1e-6, "estimate {e} exceeds selection size {k}");
        }

        #[test]
        fn urn_beats_proportional_with_many_duplicates(
            d in 2.0f64..1e4,
            frac in 0.01f64..0.99,
        ) {
            // When each value has many duplicate tuples (n/d >= 10), the urn
            // estimate dominates proportional scaling: selecting a fraction f
            // of tuples removes far fewer than a fraction f of the values.
            // (The inequality needs r·f >= -ln(1-f), guaranteed on this
            // domain; at n = d the relation flips, see the paper's ≈ case.)
            let n = d * 10.0;
            let k = n * frac;
            let urn = expected_distinct(d, k).unwrap();
            let prop = d * frac;
            proptest::prop_assert!(urn >= prop - 1e-6,
                "urn {urn} < proportional {prop} for d={d} n={n} k={k}");
        }
    }
}
