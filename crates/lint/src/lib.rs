//! `els-lint` — in-workspace static analysis for the ELS engine.
//!
//! Five passes enforce invariants the test suite cannot see (see
//! `DESIGN.md` §4f): panic-freedom, determinism, metrics-only I/O, atomics
//! discipline, and crate layering. Pre-existing violations are
//! grandfathered in `lint-baseline.json`, a ratchet: per-file-per-lint
//! counts may only decrease, new violations fail, and suppressions require
//! a written justification that is reviewed like code.

pub mod baseline;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod source;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use passes::{Lint, Violation};
use source::SourceFile;

/// The library targets the passes cover: the six engine crates, the
/// umbrella facade, and the server front door. Tooling (els-bench,
/// els-lint) and the vendored shims are exempt by construction — printing
/// and clock reads are their job.
pub const LIBRARY_SRC_ROOTS: &[(&str, &str)] = &[
    ("els-storage", "crates/storage/src"),
    ("els-core", "crates/core/src"),
    ("els-catalog", "crates/catalog/src"),
    ("els-sql", "crates/sql/src"),
    ("els-exec", "crates/exec/src"),
    ("els-optimizer", "crates/optimizer/src"),
    ("els", "src"),
    ("els-server", "crates/server/src"),
];

/// Manifests the layering pass reads, alongside their crate names.
pub const LIBRARY_MANIFESTS: &[(&str, &str)] = &[
    ("els-storage", "crates/storage/Cargo.toml"),
    ("els-core", "crates/core/Cargo.toml"),
    ("els-catalog", "crates/catalog/Cargo.toml"),
    ("els-sql", "crates/sql/Cargo.toml"),
    ("els-exec", "crates/exec/Cargo.toml"),
    ("els-optimizer", "crates/optimizer/Cargo.toml"),
    ("els", "Cargo.toml"),
    ("els-server", "crates/server/Cargo.toml"),
];

/// Name of the committed ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Hard errors that fail the run regardless of the baseline: malformed or
/// unused suppressions, unreadable files.
#[derive(Debug, Clone, PartialEq)]
pub struct HardError {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (0 when the error is about the whole file).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

/// Everything one run produced, ready for reporting.
#[derive(Debug)]
pub struct Outcome {
    /// Number of library source files scanned.
    pub files_scanned: usize,
    /// All violations, suppressed ones included (marked).
    pub violations: Vec<Violation>,
    /// Unsuppressed counts per (lint, file).
    pub counts: Baseline,
    /// The committed baseline the counts were compared against.
    pub baseline: Baseline,
    /// Violations not covered by the baseline — these fail the run.
    pub new_violations: Vec<Violation>,
    /// Malformed/unused suppressions and I/O problems — always fail.
    pub hard_errors: Vec<HardError>,
}

impl Outcome {
    /// True when the tree is clean under the ratchet.
    pub fn is_ok(&self) -> bool {
        self.new_violations.is_empty() && self.hard_errors.is_empty()
    }
}

/// Run every pass over the workspace at `root`.
pub fn run(root: &Path) -> Result<Outcome, String> {
    let mut violations = Vec::new();
    let mut hard_errors = Vec::new();
    let mut files_scanned = 0usize;

    for (_, src_root) in LIBRARY_SRC_ROOTS {
        let dir = root.join(src_root);
        if !dir.is_dir() {
            return Err(format!("library source root `{src_root}` not found under {root:?}"));
        }
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        files.sort();
        for path in files {
            files_scanned += 1;
            let rel = rel_path(root, &path);
            let text =
                fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", rel))?;
            let file = SourceFile::parse(&rel, &text);
            lint_one_file(&file, &mut violations, &mut hard_errors);
        }
    }

    for (crate_name, manifest_rel) in LIBRARY_MANIFESTS {
        let text = fs::read_to_string(root.join(manifest_rel))
            .map_err(|e| format!("cannot read {manifest_rel}: {e}"))?;
        passes::run_layering_pass(crate_name, manifest_rel, &text, &mut violations);
    }

    let counts = count_unsuppressed(&violations);
    let baseline = load_baseline(root)?;
    let new_violations = find_new(&violations, &counts, &baseline);

    Ok(Outcome { files_scanned, violations, counts, baseline, new_violations, hard_errors })
}

/// Lint one parsed file: run the token passes, then apply suppressions.
/// Suppression rules: the lint name must exist, the justification is
/// mandatory (enforced at parse), and a suppression that matches no
/// violation is itself an error — stale allows rot into lies.
fn lint_one_file(
    file: &SourceFile,
    violations: &mut Vec<Violation>,
    hard_errors: &mut Vec<HardError>,
) {
    for e in &file.errors {
        hard_errors.push(HardError {
            file: file.rel_path.clone(),
            line: e.line,
            message: e.message.clone(),
        });
    }
    let mut fresh = Vec::new();
    passes::run_token_passes(file, &mut fresh);
    for sup in &file.suppressions {
        let Some(lint) = Lint::from_name(&sup.lint) else {
            hard_errors.push(HardError {
                file: file.rel_path.clone(),
                line: sup.line,
                message: format!(
                    "suppression names unknown lint `{}` (known: {})",
                    sup.lint,
                    Lint::all().map(Lint::name).join(", ")
                ),
            });
            continue;
        };
        let mut used = false;
        for v in fresh.iter_mut().filter(|v| v.lint == lint && v.line == sup.applies_to) {
            v.suppressed = true;
            used = true;
        }
        if !used {
            hard_errors.push(HardError {
                file: file.rel_path.clone(),
                line: sup.line,
                message: format!(
                    "unused suppression: no `{}` violation on line {}",
                    sup.lint, sup.applies_to
                ),
            });
        }
    }
    violations.append(&mut fresh);
}

/// Unsuppressed violation counts per (lint, file).
pub fn count_unsuppressed(violations: &[Violation]) -> Baseline {
    let mut counts = Baseline::new();
    for v in violations.iter().filter(|v| !v.suppressed) {
        *counts.entry(v.lint.name().to_string()).or_default().entry(v.file.clone()).or_insert(0) +=
            1;
    }
    counts
}

/// The violations exceeding the baseline: for each (lint, file) whose
/// count is above its grandfathered allowance, the trailing `count -
/// allowed` violations (by source order) are reported as new.
fn find_new(violations: &[Violation], counts: &Baseline, baseline: &Baseline) -> Vec<Violation> {
    let mut out = Vec::new();
    for (lint, files) in counts {
        for (file, &count) in files {
            let allowed = baseline.get(lint).and_then(|f| f.get(file)).copied().unwrap_or(0);
            if count <= allowed {
                continue;
            }
            let over = (count - allowed) as usize;
            let mut matching: Vec<&Violation> = violations
                .iter()
                .filter(|v| !v.suppressed && v.lint.name() == lint && v.file == *file)
                .collect();
            matching.sort_by_key(|v| (v.line, v.col));
            out.extend(matching.into_iter().rev().take(over).rev().cloned());
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    out
}

/// Load `lint-baseline.json`; a missing file is an empty baseline (the
/// bootstrap case).
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_FILE);
    if !path.exists() {
        return Ok(Baseline::new());
    }
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {BASELINE_FILE}: {e}"))?;
    baseline::from_json(&text).map_err(|e| format!("{BASELINE_FILE}: {e}"))
}

/// Write the current counts as the new baseline. The caller has already
/// checked the `ELS_LINT_BASELINE_UPDATE` gate.
pub fn write_baseline(root: &Path, counts: &Baseline) -> Result<(), String> {
    fs::write(root.join(BASELINE_FILE), baseline::to_json(counts))
        .map_err(|e| format!("cannot write {BASELINE_FILE}: {e}"))
}

/// Per-lint rollup used by the delta report: (current, baselined,
/// suppressed) for each lint name.
pub fn per_lint_summary(outcome: &Outcome) -> BTreeMap<String, (u64, u64, u64)> {
    let mut out: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for lint in Lint::all() {
        out.insert(lint.name().to_string(), (0, 0, 0));
    }
    for (lint, files) in &outcome.counts {
        out.entry(lint.clone()).or_default().0 += files.values().sum::<u64>();
    }
    for (lint, files) in &outcome.baseline {
        out.entry(lint.clone()).or_default().1 += files.values().sum::<u64>();
    }
    for v in outcome.violations.iter().filter(|v| v.suppressed) {
        out.entry(v.lint.name().to_string()).or_default().2 += 1;
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {dir:?}: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
