#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it ships.
# Run from the repository root: ./scripts/check.sh
#   --fast  skip the three bench smokes (build + test + lint + fmt only),
#           for tight edit loops; the full gate still runs before shipping.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "check.sh: unknown argument '$arg' (supported: --fast)" >&2; exit 2 ;;
  esac
done

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Static analysis: the in-workspace linter (crates/lint) runs the per-file
# token passes (panic-freedom, determinism, metrics-only I/O, atomics
# discipline, numeric-cast discipline, crate layering) plus the
# workspace-wide call-graph passes: panic-reachability from the public
# entry points and lock-order deadlock detection against
# els_core::sync::LOCK_ORDER. Findings are checked against the ratchet
# baseline in lint-baseline.json; a non-zero exit means a new violation, a
# malformed/unused suppression, a layering break, or a lock-order cycle.
# To re-ratchet after burning down baselined debt:
#   ELS_LINT_BASELINE_UPDATE=1 cargo run -q -p els-lint -- --baseline-update
# The full structured report (lock-order edges, panic witness paths) is
# archived at the repo root alongside the BENCH_*.json artifacts.
cargo run --release -q -p els-lint
cargo run --release -q -p els-lint -- --json > LINT_report.json
echo "check.sh: lint report archived to LINT_report.json"

cargo fmt --check

if [[ "$fast" == 1 ]]; then
  echo "check.sh: all gates passed (--fast: bench smokes skipped)"
  exit 0
fi

# Bench smoke: the kernel bench on a scaled-down workload. It exits
# non-zero and prints REGRESSION if any vectorized result diverges from
# the row-at-a-time oracle, ACCURACY REGRESSION if the ELS median
# q-error on the Section 8 chain exceeds its pinned threshold, or
# BAKE-OFF REGRESSION if the UES contender under-estimates any smoke
# query (it claims to be a guaranteed upper bound) or the bake-off's ELS
# median q-error degrades past the same threshold.
smoke_out=$(cargo run --release -q -p els-bench --bin bench_exec_kernels -- --smoke)
echo "$smoke_out"
if grep -q "REGRESSION" <<<"$smoke_out"; then
  echo "check.sh: bench smoke found a regression" >&2
  exit 1
fi

# Band-join smoke: inequality-join estimation accuracy over uniform,
# Zipf, and correlated-offset key data. Exits non-zero and prints a
# REGRESSION line if the ELS median q-error on band joins exceeds its
# pinned limit, the UES contender under-estimates any band join (it
# claims to be an upper bound — a band join must fall back to the cross
# product), any contender's executed count diverges, or no query runs
# through the RANGE band-join operator at all.
band_out=$(cargo run --release -q -p els-bench --bin bench_band_join -- --smoke)
echo "$band_out"
if grep -q "REGRESSION" <<<"$band_out"; then
  echo "check.sh: band-join smoke found a regression" >&2
  exit 1
fi

# Server traffic smoke: closed-loop clients, an overload storm, and a
# shed probe against the TCP front door over loopback. Exits non-zero
# and prints OVERLOAD REGRESSION if any client hangs, any storm attempt
# ends untyped, saturation yields zero typed Overloaded rejections, or
# cached-plan-only shedding breaks its serve-cached/refuse-uncached
# contract.
server_out=$(cargo run --release -q -p els-bench --bin bench_server_traffic -- --smoke)
echo "$server_out"
if grep -q "REGRESSION" <<<"$server_out"; then
  echo "check.sh: server traffic smoke found a regression" >&2
  exit 1
fi

echo "check.sh: all gates passed"
