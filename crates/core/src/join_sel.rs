//! Join-predicate selectivities (Algorithm ELS, Step 5; paper Equation 2).
//!
//! The selectivity of a join predicate `R1.x1 = R2.x2` is
//!
//! ```text
//! S_J = 1 / max(d1, d2)
//! ```
//!
//! derived from the uniformity and containment assumptions (paper,
//! Section 2). Which `d` values are plugged in distinguishes the paper's
//! algorithm from the standard one: **ELS** uses the *effective* column
//! cardinalities after Steps 4–5, the **standard** algorithm the original
//! (unreduced) ones.

use crate::correction::CorrectionSource;
use crate::equivalence::EquivalenceClasses;
use crate::error::{ElsError, ElsResult};
use crate::ids::{ClassId, ColumnRef};
use crate::predicate::{CmpOp, Predicate};
use crate::selectivity::{model_join_range_selectivity, SelectivityOracle};
use crate::stats::QueryStatistics;

/// Equation 2: selectivity of one join predicate from its two column
/// cardinalities. Returns 0 when either column is empty (an empty side makes
/// the join empty, which a factor of 0 propagates).
/// # Examples
///
/// ```
/// use els_core::join_sel::join_selectivity;
/// assert_eq!(join_selectivity(10.0, 100.0), 0.01); // Example 1b's J1
/// ```
pub fn join_selectivity(d_left: f64, d_right: f64) -> f64 {
    let m = d_left.max(d_right);
    if d_left <= 0.0 || d_right <= 0.0 {
        return 0.0;
    }
    1.0 / m
}

/// One join predicate, annotated for the incremental estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPredicateInfo {
    /// Left column (lower-numbered table).
    pub left: ColumnRef,
    /// Right column (higher-numbered table).
    pub right: ColumnRef,
    /// The j-equivalence class both sides belong to.
    pub class: ClassId,
    /// Equation 2 selectivity, computed from the chosen distinct counts.
    pub selectivity: f64,
}

/// Annotate every [`Predicate::JoinEq`] in `predicates` with its class and
/// selectivity. `distinct_of` supplies the column cardinality to use (the
/// caller decides between effective and original values).
pub fn annotate_join_predicates(
    predicates: &[Predicate],
    classes: &EquivalenceClasses,
    mut distinct_of: impl FnMut(ColumnRef) -> f64,
) -> ElsResult<Vec<JoinPredicateInfo>> {
    let mut out = Vec::new();
    for p in predicates {
        if let Predicate::JoinEq { left, right } = p {
            let class = classes.class_of(*left).ok_or_else(|| {
                ElsError::MalformedPredicate(format!(
                    "join predicate {p} has no equivalence class (classes must be built \
                     from the same predicate set)"
                ))
            })?;
            debug_assert_eq!(classes.class_of(*right), Some(class));
            let selectivity = join_selectivity(distinct_of(*left), distinct_of(*right));
            out.push(JoinPredicateInfo { left: *left, right: *right, class, selectivity });
        }
    }
    Ok(out)
}

/// [`annotate_join_predicates`] with a feedback hook: each annotated
/// predicate's Equation 2 selectivity is multiplied by the published
/// correction of its equivalence class (if any) and clamped back into
/// `[0, 1]`. Every predicate of a class receives the *same* factor — a
/// uniform scaling that preserves the relative ordering rule LS selects
/// by, which is why corrections compose with the paper's Step 6 instead
/// of replacing it.
pub fn annotate_join_predicates_corrected(
    predicates: &[Predicate],
    classes: &EquivalenceClasses,
    distinct_of: impl FnMut(ColumnRef) -> f64,
    corrections: &dyn CorrectionSource,
) -> ElsResult<Vec<JoinPredicateInfo>> {
    let mut infos = annotate_join_predicates(predicates, classes, distinct_of)?;
    for info in &mut infos {
        if let Some(corr) = corrections.join_correction(classes.members(info.class)) {
            if corr.is_finite() && corr > 0.0 {
                info.selectivity = (info.selectivity * corr).clamp(0.0, 1.0);
            }
        }
    }
    Ok(infos)
}

/// One inequality join predicate, annotated for the incremental estimator.
/// Unlike [`JoinPredicateInfo`], range predicates have no equivalence class:
/// each one multiplies its selectivity into the step that first crosses it,
/// like an extra restriction on the cross product.
#[derive(Debug, Clone, PartialEq)]
pub struct RangePredicateInfo {
    /// Left column (lower-numbered table).
    pub left: ColumnRef,
    /// The range operator.
    pub op: CmpOp,
    /// Right column (higher-numbered table).
    pub right: ColumnRef,
    /// Estimated selectivity over the cross product of the two tables.
    pub selectivity: f64,
}

/// Annotate every [`Predicate::JoinRange`] in `predicates` with its
/// selectivity: the oracle (histogram integration in `els-catalog`) is
/// consulted first, then the uniform-domain model over the base column
/// statistics, and finally the feedback correction for the predicate's
/// inequality key is multiplied in and the result clamped to `[0, 1]`.
pub fn annotate_range_predicates(
    predicates: &[Predicate],
    stats: &QueryStatistics,
    oracle: &dyn SelectivityOracle,
    corrections: &dyn CorrectionSource,
) -> ElsResult<Vec<RangePredicateInfo>> {
    let mut out = Vec::new();
    for p in predicates {
        if let Predicate::JoinRange { left, op, right } = p {
            let mut selectivity = match oracle.join_range_selectivity(*left, *op, *right) {
                Some(s) => s.clamp(0.0, 1.0),
                None => {
                    model_join_range_selectivity(stats.column(*left)?, *op, stats.column(*right)?)
                }
            };
            if let Some(corr) = corrections.range_correction(*left, *op, *right) {
                if corr.is_finite() && corr > 0.0 {
                    selectivity = (selectivity * corr).clamp(0.0, 1.0);
                }
            }
            out.push(RangePredicateInfo { left: *left, op: *op, right: *right, selectivity });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    #[test]
    fn example_1b_selectivities() {
        // d_x=10, d_y=100, d_z=1000 (paper Example 1b).
        assert_eq!(join_selectivity(10.0, 100.0), 0.01); // J1
        assert_eq!(join_selectivity(100.0, 1000.0), 0.001); // J2
        assert_eq!(join_selectivity(10.0, 1000.0), 0.001); // J3
    }

    #[test]
    fn selectivity_is_symmetric() {
        assert_eq!(join_selectivity(7.0, 3.0), join_selectivity(3.0, 7.0));
    }

    #[test]
    fn empty_side_gives_zero() {
        assert_eq!(join_selectivity(0.0, 100.0), 0.0);
        assert_eq!(join_selectivity(10.0, 0.0), 0.0);
    }

    #[test]
    fn annotate_assigns_classes_and_selectivities() {
        let preds = crate::closure::transitive_closure(&[
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
        ]);
        let classes = EquivalenceClasses::from_predicates(&preds);
        let d = |cr: ColumnRef| [10.0, 100.0, 1000.0][cr.table];
        let infos = annotate_join_predicates(&preds, &classes, d).unwrap();
        assert_eq!(infos.len(), 3);
        assert!(infos.iter().all(|i| i.class == ClassId(0)));
        let mut sels: Vec<f64> = infos.iter().map(|i| i.selectivity).collect();
        sels.sort_by(f64::total_cmp);
        assert_eq!(sels, vec![0.001, 0.001, 0.01]);
    }

    #[test]
    fn annotate_rejects_classless_join_predicate() {
        // Classes built from a *different* predicate set than the join list.
        let classes = EquivalenceClasses::from_predicates(&[]);
        let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0))];
        let err = annotate_join_predicates(&preds, &classes, |_| 1.0).unwrap_err();
        assert!(matches!(err, ElsError::MalformedPredicate(_)));
    }

    #[test]
    fn corrected_annotation_scales_whole_classes_uniformly() {
        struct PerClass;
        impl CorrectionSource for PerClass {
            fn scan_correction(&self, _: usize, _: &str) -> Option<f64> {
                None
            }
            fn join_correction(&self, members: &[ColumnRef]) -> Option<f64> {
                // Receives the full sorted member set, so the key cannot
                // depend on which predicate of the class asks.
                assert_eq!(members, &[c(0, 0), c(1, 0), c(2, 0)][..]);
                Some(10.0)
            }
        }
        let preds = crate::closure::transitive_closure(&[
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
        ]);
        let classes = EquivalenceClasses::from_predicates(&preds);
        let d = |cr: ColumnRef| [10.0, 100.0, 1000.0][cr.table];
        let plain = annotate_join_predicates(&preds, &classes, d).unwrap();
        let corrected = annotate_join_predicates_corrected(&preds, &classes, d, &PerClass).unwrap();
        for (p, q) in plain.iter().zip(&corrected) {
            assert!((q.selectivity - (p.selectivity * 10.0).min(1.0)).abs() < 1e-12);
        }
        // Uniform scaling preserves the LS ordering within the class.
        let max_plain = plain.iter().map(|i| i.selectivity).fold(f64::NEG_INFINITY, f64::max);
        let max_corr = corrected.iter().map(|i| i.selectivity).fold(f64::NEG_INFINITY, f64::max);
        assert!((max_corr - (max_plain * 10.0).min(1.0)).abs() < 1e-12);
        // Degenerate factors are ignored; NoCorrections is the identity.
        struct Bad;
        impl CorrectionSource for Bad {
            fn scan_correction(&self, _: usize, _: &str) -> Option<f64> {
                None
            }
            fn join_correction(&self, _: &[ColumnRef]) -> Option<f64> {
                Some(f64::NAN)
            }
        }
        let ignored = annotate_join_predicates_corrected(&preds, &classes, d, &Bad).unwrap();
        assert_eq!(ignored, plain);
        let identity = annotate_join_predicates_corrected(
            &preds,
            &classes,
            d,
            &crate::correction::NoCorrections,
        )
        .unwrap();
        assert_eq!(identity, plain);
    }

    #[test]
    fn annotate_range_predicates_uses_model_oracle_and_corrections() {
        use crate::stats::{ColumnStatistics, TableStatistics};
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(100.0, vec![ColumnStatistics::with_domain(100.0, 0.0, 99.0)]),
            TableStatistics::new(100.0, vec![ColumnStatistics::with_domain(100.0, 0.0, 99.0)]),
        ]);
        let preds = vec![
            Predicate::join_range(c(0, 0), CmpOp::Lt, c(1, 0)),
            Predicate::col_eq(c(0, 0), c(1, 0)),
        ];
        // Model path: identical 100-point grids → (d−1)/2d = 0.495.
        let infos = crate::correction::NoCorrections;
        let out = annotate_range_predicates(&preds, &stats, &crate::selectivity::NoOracle, &infos)
            .unwrap();
        assert_eq!(out.len(), 1, "equi predicate skipped");
        assert_eq!(out[0].op, CmpOp::Lt);
        assert!((out[0].selectivity - 0.495).abs() < 1e-12, "got {}", out[0].selectivity);

        // Oracle path overrides the model.
        struct Fixed;
        impl SelectivityOracle for Fixed {
            fn local_selectivity(
                &self,
                _: ColumnRef,
                _: CmpOp,
                _: &els_storage::Value,
            ) -> Option<f64> {
                None
            }
            fn join_range_selectivity(&self, _: ColumnRef, _: CmpOp, _: ColumnRef) -> Option<f64> {
                Some(0.25)
            }
        }
        let out = annotate_range_predicates(&preds, &stats, &Fixed, &infos).unwrap();
        assert_eq!(out[0].selectivity, 0.25);

        // Corrections multiply in and clamp; degenerate factors are ignored.
        struct Corr(f64);
        impl CorrectionSource for Corr {
            fn scan_correction(&self, _: usize, _: &str) -> Option<f64> {
                None
            }
            fn join_correction(&self, _: &[ColumnRef]) -> Option<f64> {
                None
            }
            fn range_correction(&self, _: ColumnRef, _: CmpOp, _: ColumnRef) -> Option<f64> {
                Some(self.0)
            }
        }
        let out = annotate_range_predicates(&preds, &stats, &Fixed, &Corr(2.0)).unwrap();
        assert_eq!(out[0].selectivity, 0.5);
        let out = annotate_range_predicates(&preds, &stats, &Fixed, &Corr(100.0)).unwrap();
        assert_eq!(out[0].selectivity, 1.0);
        let out = annotate_range_predicates(&preds, &stats, &Fixed, &Corr(f64::NAN)).unwrap();
        assert_eq!(out[0].selectivity, 0.25);
    }

    #[test]
    fn annotate_skips_local_predicates() {
        let preds = vec![Predicate::local_cmp(c(0, 0), crate::CmpOp::Lt, 5i64)];
        let classes = EquivalenceClasses::from_predicates(&preds);
        let infos = annotate_join_predicates(&preds, &classes, |_| 1.0).unwrap();
        assert!(infos.is_empty());
    }
}
