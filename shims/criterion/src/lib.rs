//! Vendored, dependency-free stand-in for the subset of `criterion` this
//! workspace's benches use.
//!
//! The build environment cannot reach a crates.io registry (see the
//! offline-build note in `DESIGN.md`). This shim keeps `cargo bench`
//! compiling and producing useful wall-clock numbers: each benchmark is
//! warmed up for `warm_up_time`, then sampled until `measurement_time`
//! elapses, and the mean/min per-iteration times are printed. There are
//! no statistics, plots, or baselines.

// Tooling/timing layer: measuring wall clocks (and exiting non-zero) is
// this crate's job, so the workspace-wide `disallowed-methods` bans from
// clippy.toml do not apply here.
#![allow(clippy::disallowed_methods)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples to aim for (upper bound on timing loops).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// No-op (CLI filtering is not supported by the shim).
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned() }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Close the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// An id distinguished by its parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { function: Some(name.to_owned()), parameter: None }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "benchmark"),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `self.iterations` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, mut f: F) {
    // Warm up and discover a per-call duration estimate.
    let mut bencher = Bencher { iterations: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut per_call = Duration::from_nanos(1);
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut bencher);
        per_call =
            (bencher.elapsed / bencher.iterations.max(1) as u32).max(Duration::from_nanos(1));
    }
    // Size batches so `sample_size` samples roughly fill measurement_time.
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let iters_per_sample = (budget_per_sample.as_nanos() / per_call.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;
    let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
    let measure_start = Instant::now();
    while samples.len() < config.sample_size && measure_start.elapsed() < config.measurement_time {
        bencher.iterations = iters_per_sample;
        f(&mut bencher);
        samples.push(bencher.elapsed / iters_per_sample as u32);
    }
    if samples.is_empty() {
        bencher.iterations = 1;
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or(mean);
    println!(
        "bench: {label:<48} mean {mean:>12?}  min {min:>12?}  ({} samples x {iters_per_sample} iters)",
        samples.len()
    );
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Group benchmark functions, optionally with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_and_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(1), &1u64, |b, &x| b.iter(|| x + 1));
        g.finish();
    }
}
