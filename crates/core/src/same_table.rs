//! J-equivalent join columns within a single table
//! (Algorithm ELS, Step 5 special case; paper Section 6).
//!
//! When transitive closure leaves two or more columns of one table in the
//! same equivalence class (e.g. `R2.y = R2.w` implied by `R1.x = R2.y ∧
//! R1.x = R2.w`), the implied local predicate selects only the tuples whose
//! j-equivalent columns agree. With columns ordered by effective cardinality
//! d₍₁₎ ≤ d₍₂₎ ≤ … ≤ d₍ₙ₎, the paper derives:
//!
//! ```text
//! ‖R‖″ = ⌈ ‖R‖′ / (d₍₂₎ · d₍₃₎ · … · d₍ₙ₎) ⌉
//! d_join = ⌈ d₍₁₎ · (1 − (1 − 1/d₍₁₎)^‖R‖″) ⌉        (urn model)
//! ```
//!
//! and all members of the group thereafter act as **one** join column with
//! cardinality `d_join` — evaluating the intra-table equality makes the
//! redundant joins free. The *standard* algorithm (the paper's strawman)
//! skips this treatment entirely; the estimator selects between the two at
//! the algorithm level.

use crate::equivalence::EquivalenceClasses;
use crate::error::ElsResult;
use crate::ids::{ClassId, ColumnRef};
use crate::local_effects::EffectiveStats;
use crate::urn;

/// Record of one applied Section 6 adjustment.
#[derive(Debug, Clone, PartialEq)]
pub struct SameTableAdjustment {
    /// The table holding the j-equivalent columns.
    pub table: usize,
    /// The equivalence class involved.
    pub class: ClassId,
    /// The group's member columns (two or more), sorted.
    pub members: Vec<ColumnRef>,
    /// Table cardinality before the adjustment (‖R‖′).
    pub cardinality_before: f64,
    /// Table cardinality after (‖R‖″).
    pub cardinality_after: f64,
    /// The single effective join-column cardinality for the whole group.
    pub join_distinct: f64,
}

/// Find all same-table j-equivalent groups and fold their effect into
/// `eff`: the table cardinality drops to ‖R‖″ and every member column's
/// effective distinct count becomes the group's `d_join`. Distinct counts of
/// unrelated columns are capped at the new cardinality (a table cannot have
/// more distinct values than rows). Returns the applied adjustments, in
/// `(table, class)` order, for inspection and EXPLAIN output.
pub fn apply_same_table_equivalences(
    eff: &mut EffectiveStats,
    classes: &EquivalenceClasses,
) -> ElsResult<Vec<SameTableAdjustment>> {
    let mut adjustments = Vec::new();
    let num_tables = eff.tables.len();
    for table in 0..num_tables {
        for (class, members) in classes.iter() {
            let group: Vec<ColumnRef> =
                members.iter().copied().filter(|c| c.table == table).collect();
            if group.len() < 2 {
                continue;
            }
            let Some(entry) = eff.tables.get_mut(table) else { continue };
            let before = entry.cardinality;
            if before <= 0.0 {
                continue;
            }
            // Effective cardinalities of the group, ascending.
            let mut ds: Vec<f64> =
                group.iter().filter_map(|c| entry.column_distinct.get(c.column).copied()).collect();
            ds.sort_by(|a, b| a.total_cmp(b));
            let Some((&d_min, rest)) = ds.split_first() else { continue };
            if d_min <= 0.0 {
                // A member column is already empty: the table empties too.
                entry.cardinality = 0.0;
                for d in &mut entry.column_distinct {
                    *d = 0.0;
                }
                adjustments.push(SameTableAdjustment {
                    table,
                    class,
                    members: group,
                    cardinality_before: before,
                    cardinality_after: 0.0,
                    join_distinct: 0.0,
                });
                continue;
            }
            let divisor: f64 = rest.iter().product();
            let after = (before / divisor).ceil().max(1.0);
            let d_join = urn::expected_distinct_rounded(d_min, after)?;

            entry.cardinality = after;
            for c in &group {
                if let Some(d) = entry.column_distinct.get_mut(c.column) {
                    *d = d_join;
                }
            }
            for d in &mut entry.column_distinct {
                *d = d.min(after);
            }
            adjustments.push(SameTableAdjustment {
                table,
                class,
                members: group,
                cardinality_before: before,
                cardinality_after: after,
                join_distinct: d_join,
            });
        }
    }
    Ok(adjustments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_effects::{compute_effective_stats, DistinctReduction};
    use crate::predicate::Predicate;
    use crate::selectivity::NoOracle;
    use crate::stats::{ColumnStatistics, QueryStatistics, TableStatistics};

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    /// The paper's Section 6 example: ||R1||=100, d_x=100; ||R2||=1000,
    /// d_y=10, d_w=50; predicates R1.x=R2.y, R1.x=R2.w (+ implied R2.y=R2.w).
    fn section6_setup() -> (QueryStatistics, Vec<Predicate>) {
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(100.0)]),
            TableStatistics::new(
                1000.0,
                vec![ColumnStatistics::with_distinct(10.0), ColumnStatistics::with_distinct(50.0)],
            ),
        ]);
        let preds = crate::closure::transitive_closure(&[
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(0, 0), c(1, 1)),
        ]);
        (stats, preds)
    }

    #[test]
    fn paper_section6_example() {
        let (stats, preds) = section6_setup();
        let classes = EquivalenceClasses::from_predicates(&preds);
        let mut eff =
            compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
                .unwrap();
        let adj = apply_same_table_equivalences(&mut eff, &classes).unwrap();
        assert_eq!(adj.len(), 1);
        let a = &adj[0];
        assert_eq!(a.table, 1);
        assert_eq!(a.members, vec![c(1, 0), c(1, 1)]);
        // ||R2||' = 1000 / 50 = 20.
        assert_eq!(a.cardinality_after, 20.0);
        // Effective join cardinality = ceil(10 * (1 - 0.9^20)) = 9.
        assert_eq!(a.join_distinct, 9.0);
        // Both member columns now carry the group cardinality.
        assert_eq!(eff.distinct(c(1, 0)), 9.0);
        assert_eq!(eff.distinct(c(1, 1)), 9.0);
        assert_eq!(eff.cardinality(1), 20.0);
        // R1 untouched.
        assert_eq!(eff.cardinality(0), 100.0);
    }

    #[test]
    fn three_way_group_divides_by_all_but_smallest() {
        // One table, three j-equivalent columns with d = 4, 10, 20 and
        // ||R|| = 4000: ||R||'' = ceil(4000 / (10*20)) = 20,
        // d_join = ceil(urn(4, 20)) = 4.
        let stats = QueryStatistics::new(vec![TableStatistics::new(
            4000.0,
            vec![
                ColumnStatistics::with_distinct(10.0),
                ColumnStatistics::with_distinct(4.0),
                ColumnStatistics::with_distinct(20.0),
            ],
        )]);
        let preds = crate::closure::transitive_closure(&[
            Predicate::col_eq(c(0, 0), c(0, 1)),
            Predicate::col_eq(c(0, 1), c(0, 2)),
        ]);
        let classes = EquivalenceClasses::from_predicates(&preds);
        let mut eff =
            compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
                .unwrap();
        let adj = apply_same_table_equivalences(&mut eff, &classes).unwrap();
        assert_eq!(adj.len(), 1);
        assert_eq!(adj[0].cardinality_after, 20.0);
        assert_eq!(adj[0].join_distinct, 4.0);
    }

    #[test]
    fn no_group_no_change() {
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(10.0)]),
            TableStatistics::new(200.0, vec![ColumnStatistics::with_distinct(20.0)]),
        ]);
        let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0))];
        let classes = EquivalenceClasses::from_predicates(&preds);
        let mut eff =
            compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
                .unwrap();
        let adj = apply_same_table_equivalences(&mut eff, &classes).unwrap();
        assert!(adj.is_empty());
        assert_eq!(eff.cardinality(0), 100.0);
        assert_eq!(eff.cardinality(1), 200.0);
    }

    #[test]
    fn cardinality_never_drops_below_one_tuple() {
        // Tiny table, huge divisor: at least one (expected) tuple remains.
        let stats = QueryStatistics::new(vec![TableStatistics::new(
            10.0,
            vec![ColumnStatistics::with_distinct(10.0), ColumnStatistics::with_distinct(10.0)],
        )]);
        let preds = vec![Predicate::col_eq(c(0, 0), c(0, 1))];
        let classes = EquivalenceClasses::from_predicates(&preds);
        let mut eff =
            compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
                .unwrap();
        let adj = apply_same_table_equivalences(&mut eff, &classes).unwrap();
        assert_eq!(adj[0].cardinality_after, 1.0);
        assert_eq!(adj[0].join_distinct, 1.0);
    }

    #[test]
    fn empty_member_column_empties_the_table() {
        let stats = QueryStatistics::new(vec![TableStatistics::new(
            100.0,
            vec![ColumnStatistics::with_distinct(10.0), ColumnStatistics::with_distinct(5.0)],
        )]);
        // A contradictory local predicate empties column 0 first.
        let preds = crate::closure::transitive_closure(&[
            Predicate::col_eq(c(0, 0), c(0, 1)),
            Predicate::local_cmp(c(0, 0), crate::CmpOp::Eq, 1i64),
            Predicate::local_cmp(c(0, 0), crate::CmpOp::Eq, 2i64),
        ]);
        let classes = EquivalenceClasses::from_predicates(&preds);
        let mut eff =
            compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
                .unwrap();
        // Table already empty from the contradiction; adjustment is a no-op
        // skip (cardinality 0 short-circuits).
        let _ = apply_same_table_equivalences(&mut eff, &classes).unwrap();
        assert_eq!(eff.cardinality(0), 0.0);
    }

    #[test]
    fn other_columns_capped_at_new_cardinality() {
        let stats = QueryStatistics::new(vec![TableStatistics::new(
            1000.0,
            vec![
                ColumnStatistics::with_distinct(10.0),
                ColumnStatistics::with_distinct(50.0),
                ColumnStatistics::with_distinct(900.0), // unrelated wide column
            ],
        )]);
        let preds = vec![Predicate::col_eq(c(0, 0), c(0, 1))];
        let classes = EquivalenceClasses::from_predicates(&preds);
        let mut eff =
            compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
                .unwrap();
        apply_same_table_equivalences(&mut eff, &classes).unwrap();
        assert_eq!(eff.cardinality(0), 20.0);
        assert!(eff.distinct(c(0, 2)) <= 20.0);
    }
}
