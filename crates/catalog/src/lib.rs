//! # els-catalog
//!
//! Schema and statistics substrate for the ELS reproduction: the catalog
//! plays the role of Starburst's system catalog in the paper's experiment.
//!
//! * [`schema`] — table/column definitions derived from stored data.
//! * [`histogram`] — equi-width and equi-depth histograms plus
//!   most-common-value lists; these are the "distribution statistics" the
//!   paper's Section 5 allows for local predicates.
//! * [`stats`] — per-column and per-table statistics containers.
//! * [`collect`] — statistics collection (ANALYZE) over `els-storage`
//!   tables: exact row counts, exact distinct counts, min/max, optional
//!   histograms.
//! * [`catalog`] — the registry binding names → (definition, statistics,
//!   data), and the bridge into `els-core`: positional
//!   [`els_core::QueryStatistics`] for a `FROM` list and a
//!   [`els_core::selectivity::SelectivityOracle`] backed by histograms.
//! * [`shared`] — concurrent serving: [`SharedCatalog`] publishes immutable
//!   [`CatalogSnapshot`]s under a monotonically increasing *epoch*, the
//!   invalidation token for cached plans.
//! * [`feedback`] — runtime feedback: per-key correction factors learned
//!   from executed queries ([`FeedbackStore`]), shared across snapshots
//!   and consulted by the estimator under
//!   [`FeedbackMode::Apply`](feedback::FeedbackMode).
//!
//! # Example
//!
//! ```
//! use els_storage::datagen::{TableSpec, ColumnSpec, Distribution};
//! use els_catalog::{Catalog, collect::CollectOptions};
//!
//! let table = TableSpec::new("t", 1000)
//!     .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
//!     .generate(1);
//! let mut catalog = Catalog::new();
//! catalog.register(table, &CollectOptions::default()).unwrap();
//! let stats = catalog.table_stats("t").unwrap();
//! assert_eq!(stats.row_count, 1000);
//! assert_eq!(stats.columns[0].distinct, 1000.0);
//! ```

// Clippy-level twin of the els-lint panic-freedom and metrics-only-io
// passes (scripts/check.sh runs clippy with `-D warnings`, so these warn
// levels are bans on non-test library code).
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)
)]

pub mod catalog;
pub mod collect;
pub mod error;
pub mod feedback;
pub mod histogram;
pub mod schema;
pub mod shared;
pub mod stats;

pub use catalog::{Catalog, QueryOracle};
pub use error::{CatalogError, CatalogResult};
pub use feedback::{FeedbackCounters, FeedbackKey, FeedbackMode, FeedbackStore, QueryCorrections};
pub use histogram::{EquiDepthHistogram, EquiWidthHistogram, Histogram, MostCommonValues};
pub use schema::{ColumnDef, TableDef};
pub use shared::{CatalogSnapshot, SharedCatalog};
pub use stats::{ColumnStats, TableStats};
