//! Workspace symbol table: every `fn` definition, with its enclosing
//! `impl`/`trait` owner, resolved from the token streams alone.
//!
//! This is the foundation the inter-procedural passes (`panic-reachability`,
//! `lock-order`) stand on. It is deliberately a *token-level* model, not a
//! parser: one linear pass per file tracks brace nesting, `impl`/`trait`
//! headers, and `fn` items, and records for every code token which function
//! body it sits inside (`fn_at`). That is exact for the constructs this
//! workspace uses and degrades safely (no symbol, no edge) for anything
//! exotic — the passes built on top only ever *miss* facts, never invent
//! them, and the runtime `els_lock_audit` shim covers what the static view
//! cannot see.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// One library source file, parsed once and shared by every workspace pass.
#[derive(Debug)]
pub struct ParsedFile {
    /// The `els-*` crate the file belongs to.
    pub crate_name: String,
    /// Lexed file with suppression and `#[cfg(test)]` annotations.
    pub source: SourceFile,
    /// Cached `source.code_indices()` — the token stream every pass walks.
    pub code: Vec<usize>,
}

impl ParsedFile {
    /// Wrap a parsed source file, caching its code-token index.
    pub fn new(crate_name: &str, source: SourceFile) -> ParsedFile {
        let code = source.code_indices();
        ParsedFile { crate_name: crate_name.to_string(), source, code }
    }

    /// The code token at code-index `ci`, if any.
    pub fn tok(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).map(|&i| &self.source.tokens[i])
    }

    /// Text of the code token at `ci` (empty when out of range).
    pub fn text(&self, ci: usize) -> &str {
        self.tok(ci).map_or("", |t| t.text.as_str())
    }

    /// True when the code token at `ci` is the punctuation `c`.
    pub fn is_punct(&self, ci: usize, c: char) -> bool {
        self.tok(ci).is_some_and(|t| t.kind == TokenKind::Punct(c))
    }
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnDef {
    /// The function's bare name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, `None` for free functions.
    pub owner: Option<String>,
    /// Index of the defining file in the workspace file list.
    pub file_idx: usize,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Crate the definition lives in.
    pub crate_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-index range of the body, `{` and `}` inclusive; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
}

impl FnDef {
    /// `Owner::name` or bare `name` — the spelling reports use.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace symbol table.
#[derive(Debug)]
pub struct SymbolTable {
    /// Every function definition, in (file, source) order.
    pub fns: Vec<FnDef>,
    /// Name → indices into `fns`.
    pub by_name: HashMap<String, Vec<usize>>,
    /// Every `impl`/`trait` owner type name seen anywhere.
    pub owners: HashSet<String>,
    /// Module-path segments that can qualify a free-function call: file
    /// stems, crate idents (`els_core`), and `crate`/`self`/`super`.
    pub modules: HashSet<String>,
    /// `fn_at[file_idx][ci]` — the innermost function whose body contains
    /// code token `ci` of that file.
    pub fn_at: Vec<Vec<Option<usize>>>,
}

impl SymbolTable {
    /// Build the table over every parsed file.
    pub fn build(files: &[ParsedFile]) -> SymbolTable {
        let mut table = SymbolTable {
            fns: Vec::new(),
            by_name: HashMap::new(),
            owners: HashSet::new(),
            modules: HashSet::new(),
            fn_at: Vec::new(),
        };
        table.modules.extend(["crate", "self", "super"].map(str::to_string));
        for (file_idx, pf) in files.iter().enumerate() {
            if let Some(stem) =
                pf.source.rel_path.rsplit('/').next().and_then(|f| f.strip_suffix(".rs"))
            {
                table.modules.insert(stem.to_string());
            }
            table.modules.insert(pf.crate_name.replace('-', "_"));
            scan_file(file_idx, pf, &mut table);
        }
        for (i, f) in table.fns.iter().enumerate() {
            table.by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(o) = &f.owner {
                table.owners.insert(o.clone());
            }
        }
        table
    }

    /// All definitions of `name` (any owner).
    pub fn defs_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// What an open brace belongs to.
enum Scope {
    /// `impl Type { ... }` or `trait Name { ... }` body.
    Impl(String),
    /// A function body (index into `fns`).
    Fn(usize),
    /// Anything else: blocks, match bodies, struct literals, modules.
    Block,
}

/// One linear pass over a file's code tokens: find `impl`/`trait` headers
/// and `fn` items, match braces, and fill `fn_at`.
fn scan_file(file_idx: usize, pf: &ParsedFile, table: &mut SymbolTable) {
    let n = pf.code.len();
    let mut fn_at: Vec<Option<usize>> = vec![None; n];
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut pending_fn: Option<usize> = None;
    // Paren/bracket nesting inside the current item header (so the `;` of
    // `[u8; 4]` in a parameter list does not end a bodyless declaration).
    let (mut pdepth, mut bdepth) = (0i32, 0i32);

    for ci in 0..n {
        let Some(tok) = pf.tok(ci) else { break };
        // Record the innermost enclosing fn for this token.
        fn_at[ci] = scopes.iter().rev().find_map(|s| match s {
            Scope::Fn(i) => Some(*i),
            _ => None,
        });
        match tok.kind {
            TokenKind::Ident => match tok.text.as_str() {
                "impl" | "trait" if item_position(pf, ci) => {
                    pending_impl = parse_owner(pf, ci);
                }
                "fn" if pf.tok(ci + 1).is_some_and(|t| t.kind == TokenKind::Ident) => {
                    let name_tok = pf.tok(ci + 1).map(|t| (t.text.clone(), t.line));
                    if let Some((name, line)) = name_tok {
                        let owner = scopes.iter().rev().find_map(|s| match s {
                            Scope::Impl(o) => Some(o.clone()),
                            _ => None,
                        });
                        table.fns.push(FnDef {
                            name,
                            owner,
                            file_idx,
                            file: pf.source.rel_path.clone(),
                            crate_name: pf.crate_name.clone(),
                            line,
                            body: None,
                        });
                        pending_fn = Some(table.fns.len() - 1);
                        (pdepth, bdepth) = (0, 0);
                    }
                }
                _ => {}
            },
            TokenKind::Punct('(') => pdepth += 1,
            TokenKind::Punct(')') => pdepth -= 1,
            TokenKind::Punct('[') => bdepth += 1,
            TokenKind::Punct(']') => bdepth -= 1,
            TokenKind::Punct(';') if pdepth == 0 && bdepth == 0 => {
                // A bodyless trait-method declaration ends here.
                pending_fn = None;
            }
            TokenKind::Punct('{') => {
                if let Some(idx) = pending_fn.take() {
                    if pdepth == 0 && bdepth == 0 {
                        table.fns[idx].body = Some((ci, ci));
                        fn_at[ci] = Some(idx);
                        scopes.push(Scope::Fn(idx));
                    } else {
                        // A brace inside a header we do not model; give the
                        // fn back its pending slot and treat this as a block.
                        pending_fn = Some(idx);
                        scopes.push(Scope::Block);
                    }
                } else if let Some(owner) = pending_impl.take() {
                    scopes.push(Scope::Impl(owner));
                } else {
                    scopes.push(Scope::Block);
                }
            }
            TokenKind::Punct('}') => {
                if let Some(Scope::Fn(idx)) = scopes.pop() {
                    if let Some((start, _)) = table.fns[idx].body {
                        table.fns[idx].body = Some((start, ci));
                    }
                }
            }
            _ => {}
        }
    }
    table.fn_at.push(fn_at);
}

/// Is the `impl`/`trait` at `ci` an item, rather than `-> impl Trait` /
/// `x: impl Trait` in type position? Items follow `;`, `}`, `{`, a closed
/// attribute `]`, `pub`/`unsafe`, or the start of the file.
fn item_position(pf: &ParsedFile, ci: usize) -> bool {
    if ci == 0 {
        return true;
    }
    match pf.tok(ci - 1) {
        Some(t) => match t.kind {
            TokenKind::Punct(';' | '}' | '{' | ']') => true,
            TokenKind::Ident => matches!(t.text.as_str(), "pub" | "unsafe"),
            _ => false,
        },
        None => true,
    }
}

/// Owner type name of the `impl`/`trait` header starting at `ci`: the last
/// path segment of the implemented-on type (the part after `for` when
/// present), with generics skipped. `trait Name` is its own owner.
fn parse_owner(pf: &ParsedFile, ci: usize) -> Option<String> {
    if pf.text(ci) == "trait" {
        return pf.tok(ci + 1).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.clone());
    }
    let mut angle = 0i32;
    let mut segment: Option<String> = None;
    let mut j = ci + 1;
    while let Some(t) = pf.tok(j) {
        match t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('{') if angle <= 0 => break,
            TokenKind::Punct(';') => return None,
            TokenKind::Ident if angle == 0 => match t.text.as_str() {
                // `impl Trait for Type` — the owner is after `for`.
                "for" => segment = None,
                "where" => break,
                "dyn" | "mut" => {}
                name => segment = Some(name.to_string()),
            },
            _ => {}
        }
        j += 1;
    }
    segment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (Vec<ParsedFile>, SymbolTable) {
        let files =
            vec![ParsedFile::new("els-core", SourceFile::parse("crates/core/src/x.rs", src))];
        let table = SymbolTable::build(&files);
        (files, table)
    }

    fn names(table: &SymbolTable) -> Vec<(String, Option<String>)> {
        table.fns.iter().map(|f| (f.name.clone(), f.owner.clone())).collect()
    }

    #[test]
    fn free_fns_and_methods_get_their_owners() {
        let (_, t) = parse(
            "fn free() {}\n\
             impl Estimator { fn join(&self) -> f64 { 1.0 } }\n\
             impl fmt::Display for ColumnRef { fn fmt(&self) {} }\n\
             trait Shape { fn area(&self) -> f64; fn unit() -> f64 { 1.0 } }",
        );
        assert_eq!(
            names(&t),
            vec![
                ("free".into(), None),
                ("join".into(), Some("Estimator".into())),
                ("fmt".into(), Some("ColumnRef".into())),
                ("area".into(), Some("Shape".into())),
                ("unit".into(), Some("Shape".into())),
            ]
        );
        // The bodyless trait declaration has no body; the default does.
        assert!(t.fns[3].body.is_none());
        assert!(t.fns[4].body.is_some());
    }

    #[test]
    fn generic_impl_headers_resolve_to_the_type_name() {
        let (_, t) = parse(
            "impl<'a, T: Clone> Wrapper<'a, T> { fn get(&self) {} }\n\
             impl<T> From<Vec<T>> for Holder<T> where T: Copy { fn from(v: Vec<T>) -> Self { Holder(v) } }",
        );
        assert_eq!(t.fns[0].owner.as_deref(), Some("Wrapper"));
        assert_eq!(t.fns[1].owner.as_deref(), Some("Holder"));
    }

    #[test]
    fn return_position_impl_trait_is_not_an_impl_block() {
        let (_, t) =
            parse("fn make(x: impl Clone) -> impl Iterator<Item = u32> { (0..3) }\nfn after() {}");
        assert_eq!(names(&t), vec![("make".into(), None), ("after".into(), None)]);
    }

    #[test]
    fn fn_at_maps_tokens_to_their_innermost_fn() {
        let (files, t) = parse("fn outer() { inner_call(); fn nested() { deep(); } tail(); }");
        let pf = &files[0];
        let at = |name: &str| {
            let ci = (0..pf.code.len()).find(|&c| pf.text(c) == name).unwrap();
            t.fn_at[0][ci].map(|i| t.fns[i].name.clone())
        };
        assert_eq!(at("inner_call"), Some("outer".into()));
        assert_eq!(at("deep"), Some("nested".into()));
        assert_eq!(at("tail"), Some("outer".into()));
    }

    #[test]
    fn array_type_semicolons_do_not_end_a_declaration() {
        let (_, t) = parse("fn f(x: [u8; 4]) -> [u8; 2] { g() }");
        assert_eq!(t.fns.len(), 1);
        assert!(t.fns[0].body.is_some());
    }

    #[test]
    fn cfg_test_fns_are_invisible() {
        let (_, t) = parse("fn lib() {}\n#[cfg(test)]\nmod tests { fn helper() {} }");
        assert_eq!(names(&t), vec![("lib".into(), None)]);
    }

    #[test]
    fn modules_and_owners_registries_fill() {
        let (_, t) = parse("impl Foo { fn m(&self) {} }");
        assert!(t.owners.contains("Foo"));
        assert!(t.modules.contains("x")); // the file stem
        assert!(t.modules.contains("els_core"));
        assert!(t.modules.contains("crate"));
    }
}
