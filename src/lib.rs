//! # els — Estimation of Join Result Sizes (EDBT 1994), reproduced
//!
//! Umbrella crate for the reproduction of *On the Estimation of Join Result
//! Sizes* (Arun Swami & K. Bernhard Schiefer, EDBT 1994). It re-exports the
//! workspace crates so examples and downstream users need a single
//! dependency:
//!
//! * [`core`] — Algorithm **ELS** and the estimation rules (the paper's
//!   contribution).
//! * [`storage`] — in-memory column store and data generators.
//! * [`catalog`] — schema and statistics (cardinalities, histograms).
//! * [`sql`] — conjunctive SPJ SQL front-end.
//! * [`exec`] — physical operators and the executor.
//! * [`optimizer`] — predicate transitive closure rewrite, cost model, and
//!   System-R dynamic-programming join enumeration.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the reproduction of
//! the paper's experiment.

// Clippy-level twin of the els-lint panic-freedom and metrics-only-io
// passes (scripts/check.sh runs clippy with `-D warnings`, so these warn
// levels are bans on non-test library code).
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)
)]

pub mod analyze;
pub mod engine;

pub use els_catalog as catalog;
pub use els_core as core;
pub use els_exec as exec;
pub use els_optimizer as optimizer;
pub use els_sql as sql;
pub use els_storage as storage;
