//! The engine facade exercised the way a downstream user would: CSV in,
//! SQL with every supported clause, buffering, estimator switching, and
//! EXPLAIN output.

use std::io::Cursor;

use els::engine::{Database, EngineError};
use els::optimizer::EstimatorPreset;
use els::storage::csv::{read_csv, write_csv};
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};
use els::storage::Value;

fn db() -> Database {
    let mut db = Database::new();
    db.generate(
        TableSpec::new("fact", 2000)
            .column(ColumnSpec::new("key", Distribution::CycleInt { modulus: 100, start: 0 }))
            .column(ColumnSpec::new(
                "v",
                Distribution::WithNulls {
                    inner: Box::new(Distribution::UniformInt { lo: 0, hi: 9 }),
                    null_fraction: 0.2,
                },
            )),
        1,
    )
    .unwrap();
    db.generate(
        TableSpec::new("dim", 100)
            .column(ColumnSpec::new("id", Distribution::SequentialInt { start: 0 })),
        2,
    )
    .unwrap();
    db
}

#[test]
fn csv_round_trip_through_the_engine() {
    let db = db();
    // Export `dim`, re-import it under a new name, and join against it.
    let dim = db.catalog().table_data("dim").unwrap();
    let mut buf = Vec::new();
    write_csv(&dim, &mut buf).unwrap();
    let copy = read_csv("dim2", &mut Cursor::new(&buf), None).unwrap();
    let mut db2 = db.clone();
    db2.register(copy).unwrap();
    let r = db2.execute("SELECT COUNT(*) FROM dim, dim2 WHERE dim.id = dim2.id").unwrap();
    assert_eq!(r.count, 100);
}

#[test]
fn between_and_is_null_clauses() {
    let db = db();
    let total = db.execute("SELECT COUNT(*) FROM fact").unwrap().count;
    let nulls = db.execute("SELECT COUNT(*) FROM fact WHERE v IS NULL").unwrap().count;
    let non_nulls = db.execute("SELECT COUNT(*) FROM fact WHERE v IS NOT NULL").unwrap().count;
    assert_eq!(nulls + non_nulls, total);
    // BETWEEN equals the two-sided range.
    let between =
        db.execute("SELECT COUNT(*) FROM fact WHERE key BETWEEN 10 AND 19").unwrap().count;
    let manual =
        db.execute("SELECT COUNT(*) FROM fact WHERE key >= 10 AND key <= 19").unwrap().count;
    assert_eq!(between, manual);
    assert_eq!(between, 200); // 10 of 100 cyclic keys, 20 rows each.
}

#[test]
fn buffered_execution_reduces_physical_io_only() {
    let mut db = db();
    // Force a nested-loops-friendly misestimator so rescans occur.
    db.set_estimator(EstimatorPreset::Sm);
    let sql = "SELECT COUNT(*) FROM fact, dim WHERE fact.key = dim.id AND fact.key < 5";
    let unbuffered = db.execute(sql).unwrap();
    db.set_buffer_pages(Some(64));
    let buffered = db.execute(sql).unwrap();
    assert_eq!(unbuffered.count, buffered.count);
    assert_eq!(unbuffered.metrics.pages_read, buffered.metrics.pages_read);
    assert!(buffered.metrics.physical_pages_read <= unbuffered.metrics.physical_pages_read);
}

#[test]
fn group_by_with_filters_and_joins() {
    let db = db();
    let r = db
        .execute(
            "SELECT fact.v, COUNT(*) FROM fact, dim \
             WHERE fact.key = dim.id AND fact.v IS NOT NULL GROUP BY fact.v",
        )
        .unwrap();
    assert!(r.count <= 10);
    // Counts must sum to the non-null join size.
    let total: i64 =
        (0..r.rows.num_rows()).map(|i| r.rows.row(i).unwrap()[1].as_int().unwrap()).sum();
    let expect = db
        .execute("SELECT COUNT(*) FROM fact, dim WHERE fact.key = dim.id AND fact.v IS NOT NULL")
        .unwrap()
        .count;
    assert_eq!(total as u64, expect);
}

#[test]
fn explain_shows_steps_and_estimates() {
    let db = db();
    let text = db
        .explain("SELECT COUNT(*) FROM fact, dim WHERE fact.key = dim.id AND fact.key < 5")
        .unwrap();
    assert!(text.contains("fact"));
    assert!(text.contains("join order"));
    assert!(text.contains("estimated sizes"));
}

#[test]
fn estimator_switch_changes_estimates_not_results() {
    let mut db = db();
    let sql = "SELECT COUNT(*) FROM fact, dim WHERE fact.key = dim.id AND fact.key < 5";
    let els = db.execute(sql).unwrap();
    db.set_estimator(EstimatorPreset::Sm);
    let sm = db.execute(sql).unwrap();
    assert_eq!(els.count, sm.count);
    // ELS's final estimate is (much) closer to the truth.
    let truth = els.count as f64;
    let els_err = (els.estimated_sizes.last().unwrap() - truth).abs();
    let sm_err = (sm.estimated_sizes.last().unwrap() - truth).abs();
    assert!(els_err <= sm_err, "ELS {els_err} vs SM {sm_err}");
}

#[test]
fn errors_do_not_poison_the_database() {
    let mut db = db();
    assert!(matches!(db.execute("SELECT"), Err(EngineError::Sql(_))));
    // A failed registration leaves prior tables usable.
    let dup = TableSpec::new("dim", 1)
        .column(ColumnSpec::new("id", Distribution::ConstInt { value: 0 }))
        .generate(3);
    assert!(db.register(dup).is_err());
    assert_eq!(db.execute("SELECT COUNT(*) FROM dim").unwrap().count, 100);
}

#[test]
fn values_surface_in_result_rows() {
    let mut db = Database::new();
    let csv = "name,score\nalice,3.5\nbob,1.0\n";
    db.register(read_csv("people", &mut Cursor::new(csv), None).unwrap()).unwrap();
    let r = db.execute("SELECT name FROM people WHERE score > 2").unwrap();
    assert_eq!(r.count, 1);
    assert_eq!(r.rows.row(0).unwrap()[0], Value::from("alice"));
}

#[test]
fn order_by_and_limit_through_the_engine() {
    let db = db();
    let r = db
        .execute(
            "SELECT fact.key FROM fact, dim WHERE fact.key = dim.id ORDER BY fact.key DESC LIMIT 7",
        )
        .unwrap();
    assert_eq!(r.count, 7);
    // Rows are sorted descending by key.
    let keys: Vec<i64> =
        (0..r.rows.num_rows()).map(|i| r.rows.row(i).unwrap()[0].as_int().unwrap()).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(keys, sorted);
    assert_eq!(keys[0], 99);
    // LIMIT without ORDER BY also truncates.
    let r = db.execute("SELECT * FROM dim LIMIT 10").unwrap();
    assert_eq!(r.count, 10);
    assert_eq!(r.rows.num_rows(), 10);
}

#[test]
fn explain_analyze_reports_estimates_vs_actuals() {
    let db = db();
    let report = db
        .explain_analyze("SELECT COUNT(*) FROM fact, dim WHERE fact.key = dim.id AND fact.key < 5")
        .unwrap();
    // One join over two scans, root first.
    assert_eq!(report.operators.len(), 3, "{report}");
    let root = report.root().unwrap();
    assert!(root.is_join, "{report}");
    assert_eq!(root.actual, report.result_rows, "{report}");
    // Model assumptions hold exactly here (cyclic keys, nested domains), so
    // the ELS estimate matches the actual join size: q-error 1.0.
    assert_eq!(report.query_q_error(), 1.0, "{report}");
    let text = report.to_string();
    assert!(text.contains("est="), "{text}");
    assert!(text.contains("act="), "{text}");
    assert!(text.contains("qerr="), "{text}");
    assert!(text.contains("fact"), "{text}");
}
