//! Closed-loop load generation for the `els-server` TCP front door.
//!
//! Two phases, matching the two pressure valves in `DESIGN.md` §4i:
//!
//! * [`closed_loop`] — N clients, each with at most one query in flight,
//!   replaying a mixed cached/uncached workload. Measures sustained
//!   throughput and tail latency *through the socket*, so protocol
//!   framing and admission bookkeeping are inside the measured path.
//! * [`overload_storm`] — C concurrent one-shot clients against a server
//!   sized for far fewer (C ≫ workers + queue depth). Every attempt must
//!   terminate with either full service, degraded (cached-plan-only)
//!   service, or a typed `ERR overloaded` rejection. A client that
//!   reaches its read timeout is a **hang** — the one outcome the
//!   front door promises never to produce — and fails the bench.
//!
//! Both phases verify result counts, so a wrong answer under concurrency
//! (tenant bleed-through, cache-lane mixup) fails loudly rather than
//! inflating qps.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};
use els_server::{serve, Client, ServerConfig, ServerError, ServerHandle, Tenants};

/// Tenant names the traffic server hosts. Both hold a table `t` with a
/// sequential-int key column, sized differently so a cross-tenant answer
/// is detectable from the count alone.
pub const TENANTS: [(&str, usize, u64); 2] = [("alpha", 4000, 11), ("beta", 2000, 12)];

/// Queries per workload pass, shared by every client. Predicates stay
/// below the smaller tenant's row count so `COUNT(*)` must equal the
/// predicate bound for *both* tenants — a free correctness oracle.
pub fn workload() -> Vec<(String, u64)> {
    [64u64, 256, 512, 777, 1024, 1500]
        .into_iter()
        .map(|k| (format!("SELECT COUNT(*) FROM t WHERE k < {k}"), k))
        .collect()
}

/// Stand up the two-tenant traffic server on an ephemeral loopback port.
pub fn traffic_server(config: ServerConfig) -> ServerHandle {
    let tenants =
        Tenants::isolated(&TENANTS.map(|(name, _, _)| name), 256).expect("valid tenant names");
    for (name, rows, seed) in TENANTS {
        tenants
            .resolve(name)
            .expect("tenant registered")
            .generate(
                TableSpec::new("t", rows)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                seed,
            )
            .expect("tenant table generates");
    }
    serve("127.0.0.1:0", tenants, config).expect("server binds loopback")
}

/// What one sustained closed-loop run measured.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Client threads driving the loop.
    pub clients: usize,
    /// Queries answered `OK` (all of them count-verified).
    pub ok: usize,
    /// Queries answered with any typed error (should be zero here: the
    /// sustained phase never oversubscribes the server).
    pub errors: usize,
    /// Of the `ok` replies, how many were plan-cache hits.
    pub cached: usize,
    /// Wall-clock time for the whole phase.
    pub elapsed: Duration,
    /// Every per-query round-trip latency, unordered.
    pub latencies: Vec<Duration>,
    /// Wrong-answer descriptions; any entry is a correctness failure.
    pub wrong: Vec<String>,
}

impl ClosedLoopReport {
    /// Sustained queries per second across all clients.
    pub fn qps(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Nearest-rank latency percentile; `p` in `0..=100`.
    pub fn percentile(&self, p: f64) -> Duration {
        percentile(&self.latencies, p)
    }
}

/// Nearest-rank percentile over an unsorted latency sample.
pub fn percentile(latencies: &[Duration], p: f64) -> Duration {
    if latencies.is_empty() || p.is_nan() {
        return Duration::ZERO;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let rank = (p.clamp(0.0, 100.0) / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Per-client tally: `(ok, errors, cached, latencies, wrong)`.
type ClientTally = (usize, usize, usize, Vec<Duration>, Vec<String>);

/// Drive `clients` closed-loop client threads, each replaying the
/// workload `rounds` times against its round-robin-assigned tenant.
/// Every reply's count is checked against the predicate bound.
pub fn closed_loop(
    addr: SocketAddr,
    clients: usize,
    rounds: usize,
    timeout: Duration,
) -> ClosedLoopReport {
    let queries = workload();
    let start = Instant::now();
    let outcomes: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let queries = &queries;
                    scope.spawn(move || {
                        let tenant = TENANTS[c % TENANTS.len()].0;
                        let mut ok = 0usize;
                        let mut errors = 0usize;
                        let mut cached = 0usize;
                        let mut latencies = Vec::with_capacity(rounds * queries.len());
                        let mut wrong = Vec::new();
                        let Ok(mut client) = Client::connect(addr, tenant, timeout) else {
                            wrong.push(format!("client {c}: connect failed"));
                            return (ok, errors, cached, latencies, wrong);
                        };
                        for _ in 0..rounds {
                            for step in 0..queries.len() {
                                // Rotate each client's starting query so cold
                                // plans are warmed by whoever arrives first.
                                let (sql, expected) = &queries[(step + c) % queries.len()];
                                let t0 = Instant::now();
                                match client.query(sql) {
                                    Ok(reply) => {
                                        latencies.push(t0.elapsed());
                                        ok += 1;
                                        cached += usize::from(reply.cached);
                                        if reply.count != *expected {
                                            wrong.push(format!(
                                                "client {c} ({tenant}): `{sql}` -> {} (want {expected})",
                                                reply.count
                                            ));
                                        }
                                    }
                                    Err(_) => errors += 1,
                                }
                            }
                        }
                        client.quit();
                        (ok, errors, cached, latencies, wrong)
                    })
                })
                .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed();
    let mut report = ClosedLoopReport {
        clients,
        ok: 0,
        errors: 0,
        cached: 0,
        elapsed,
        latencies: Vec::new(),
        wrong: Vec::new(),
    };
    for (ok, errors, cached, latencies, wrong) in outcomes {
        report.ok += ok;
        report.errors += errors;
        report.cached += cached;
        report.latencies.extend(latencies);
        report.wrong.extend(wrong);
    }
    report
}

/// What the overload storm observed, per attempt, summed.
#[derive(Debug, Clone, Default)]
pub struct StormReport {
    /// Connections attempted.
    pub attempted: usize,
    /// Attempts that got full service (both probe queries answered).
    pub served: usize,
    /// Attempts turned away at the door with a typed `ERR overloaded`.
    pub rejected: usize,
    /// Served attempts whose uncached probe was refused with `ERR shed`
    /// (degraded, cached-plan-only service — still a clean outcome).
    pub degraded: usize,
    /// Attempts that ended in any other error: transport failures,
    /// protocol violations, wrong counts. Must be zero.
    pub failed: usize,
    /// Attempts whose total wall time reached the read-timeout budget —
    /// a hang, the outcome the front door must never produce.
    pub hung: usize,
}

impl StormReport {
    /// Every attempt accounted for as served, rejected, or failed?
    pub fn accounted(&self) -> bool {
        self.served + self.rejected + self.failed == self.attempted
    }
}

/// Throw `attempts` concurrent one-shot clients at the server. Each
/// connects, runs one warm (cacheable) query and one unique uncached
/// query, and hangs up. The warm query must succeed whenever the
/// connection is admitted — even in shed mode; the unique query may be
/// shed. `warm_sql`/`warm_expected` should already be in the alpha
/// tenant's plan-cache lane (run [`closed_loop`] first).
pub fn overload_storm(
    addr: SocketAddr,
    attempts: usize,
    warm_sql: &str,
    warm_expected: u64,
    timeout: Duration,
) -> StormReport {
    let outcomes: Vec<(u8, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..attempts)
            .map(|i| {
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let outcome = storm_attempt(addr, i, warm_sql, warm_expected, timeout);
                    (outcome, t0.elapsed())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("storm thread")).collect()
    });
    let mut report = StormReport { attempted: attempts, ..StormReport::default() };
    for (outcome, elapsed) in outcomes {
        match outcome {
            SERVED => report.served += 1,
            DEGRADED => {
                report.served += 1;
                report.degraded += 1;
            }
            REJECTED => report.rejected += 1,
            _ => report.failed += 1,
        }
        if elapsed >= timeout {
            report.hung += 1;
        }
    }
    report
}

/// What the deterministic shed probe observed.
#[derive(Debug, Clone, Default)]
pub struct ShedProbe {
    /// Cached queries answered (count-verified) while shed mode was held.
    pub cached_served: usize,
    /// Uncached queries refused with a typed `ERR shed` while held.
    pub shed_refusals: usize,
    /// Anything else: wrong counts, transport errors, un-shed service
    /// while the watermark was held. Must be zero.
    pub failed: usize,
}

/// Hold the server at its shed watermark and measure degraded service
/// directly: park raw connections until the admission queue sits at the
/// watermark, then run `probes` rounds of one warm (cached) and one
/// unique (uncached) query on a connection admitted beforehand. Cached
/// plans must keep serving; uncached queries must be refused typed. The
/// overload storm can race past this state too fast to observe it — this
/// probe pins it.
pub fn shed_probe(
    handle: &ServerHandle,
    config: &ServerConfig,
    warm_sql: &str,
    warm_expected: u64,
    probes: usize,
    timeout: Duration,
) -> ShedProbe {
    let mut report = ShedProbe::default();
    let Ok(mut client) = Client::connect(handle.addr(), "alpha", timeout) else {
        report.failed += 1;
        return report;
    };
    // Warm the lane while unloaded, so the cached path is hot.
    match client.query(warm_sql) {
        Ok(reply) if reply.count == warm_expected => {}
        _ => {
            report.failed += 1;
            return report;
        }
    }
    // Park silent connections until the queue sits at the watermark:
    // idle workers pop the first few and block on their handshake read;
    // the rest queue up and hold `depth >= shed_watermark` for as long as
    // we like. Parked incrementally — connecting the full batch at once
    // can transiently overfill the queue and get a parker *rejected*
    // instead of queued. Budget `workers + queue_depth` covers the worst
    // case, and once all workers are blocked the queued depth is stable.
    let mut parked: Vec<std::net::TcpStream> = Vec::new();
    let deadline = Instant::now() + timeout;
    while handle.queue_depth() < config.shed_watermark {
        if Instant::now() >= deadline {
            report.failed += 1;
            return report;
        }
        if parked.len() < config.workers + config.queue_depth {
            parked.extend(std::net::TcpStream::connect(handle.addr()).ok());
        }
        std::thread::yield_now();
    }
    for i in 0..probes {
        match client.query(warm_sql) {
            Ok(reply) if reply.count == warm_expected => report.cached_served += 1,
            _ => report.failed += 1,
        }
        // A predicate nothing has cached: 3000.. stays clear of the
        // storm's 2000..3000 band and the workload's bounds.
        match client.query(&format!("SELECT COUNT(*) FROM t WHERE k < {}", 3000 + i)) {
            Err(ServerError::Shed) => report.shed_refusals += 1,
            _ => report.failed += 1,
        }
    }
    drop(parked);
    client.quit();
    report
}

const SERVED: u8 = 0;
const DEGRADED: u8 = 1;
const REJECTED: u8 = 2;
const FAILED: u8 = 3;

fn storm_attempt(
    addr: SocketAddr,
    index: usize,
    warm_sql: &str,
    warm_expected: u64,
    timeout: Duration,
) -> u8 {
    let mut client = match Client::connect(addr, "alpha", timeout) {
        Ok(client) => client,
        Err(ServerError::Overloaded) => return REJECTED,
        Err(_) => return FAILED,
    };
    // Admitted: the warm query must serve even under shed.
    match client.query(warm_sql) {
        Ok(reply) if reply.count == warm_expected => {}
        _ => return FAILED,
    }
    // A predicate no one else runs: misses the cache by construction.
    let k = 2000 + (index as u64 % 1000);
    let outcome = match client.query(&format!("SELECT COUNT(*) FROM t WHERE k < {k}")) {
        Ok(reply) if reply.count == k => SERVED,
        Ok(_) => FAILED,
        Err(ServerError::Shed) => DEGRADED,
        Err(_) => FAILED,
    };
    client.quit();
    outcome
}
