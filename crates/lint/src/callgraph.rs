//! Best-effort workspace call graph over the symbol table.
//!
//! Edges are extracted from token patterns with a hard rule: **no false
//! edges**. Every heuristic errs toward dropping an edge rather than
//! inventing one, because the passes downstream (panic-reachability,
//! lock-order) turn edges into findings and a phantom edge becomes a
//! phantom finding someone has to argue with. The recall limits this buys
//! are documented per pattern below; the runtime `els_lock_audit` shim and
//! the per-site token lints cover what the graph cannot see (closures,
//! function values, trait objects, turbofish calls).
//!
//! Call forms resolved:
//!
//! * `free(...)` — resolved among free functions, narrowest scope first:
//!   same file, then same crate, then workspace.
//! * `Type::method(...)` / `Self::method(...)` — resolved to `method`
//!   definitions owned by that `impl`/`trait` type.
//! * `module::free(...)` — the qualifier must be a known workspace module
//!   segment (file stem, crate ident, `crate`/`self`/`super`); unknown
//!   qualifiers (`std` paths, foreign types) produce no edge.
//! * `self.method(...)` — resolved within the enclosing `impl` owner.
//! * `recv.method(...)` — resolved only when exactly one owner in the
//!   whole workspace defines `method` *and* the name is not a common std
//!   method name (`len`, `push`, `get`, ...), where binding to the one
//!   workspace definition would usually be wrong.

use crate::lexer::TokenKind;
use crate::symbols::{ParsedFile, SymbolTable};

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Index of the calling function in the symbol table.
    pub caller: usize,
    /// Index of the called function.
    pub callee: usize,
    /// File the call site is in.
    pub file_idx: usize,
    /// Code-index of the callee name token within that file.
    pub ci: usize,
    /// 1-based source line of the call.
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Every resolved call site, in file/source order.
    pub calls: Vec<Call>,
    /// Deduplicated, sorted callee lists per function.
    pub callees: Vec<Vec<usize>>,
}

/// Method names so common on std types that an unqualified `recv.name(...)`
/// must never bind to a workspace definition just because the workspace
/// happens to define the name once.
const COMMON_STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "chain",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "fetch_add",
    "fetch_sub",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_nan",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "load",
    "lock",
    "log2",
    "map",
    "map_err",
    "max",
    "median",
    "min",
    "ne",
    "next",
    "or_default",
    "or_else",
    "or_insert",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "read",
    "read_line",
    "recv",
    "remove",
    "replace",
    "retain",
    "rev",
    "round",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by_key",
    "split",
    "splitn",
    "sqrt",
    "starts_with",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "trim",
    "trunc",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "write",
    "write_all",
    "zip",
];

/// Keywords that can be followed by `(` without being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "where", "break",
    "continue", "else", "let", "fn", "impl", "trait", "struct", "enum", "use", "mod", "pub",
    "unsafe", "const", "static", "ref", "mut", "dyn", "type", "crate", "super", "box", "await",
    "async", "yield",
];

impl CallGraph {
    /// Extract every resolvable call edge.
    pub fn build(files: &[ParsedFile], table: &SymbolTable) -> CallGraph {
        let mut calls = Vec::new();
        for (file_idx, pf) in files.iter().enumerate() {
            for ci in 0..pf.code.len() {
                let Some(caller) = table.fn_at[file_idx][ci] else { continue };
                let Some(tok) = pf.tok(ci) else { continue };
                if tok.kind != TokenKind::Ident || !pf.is_punct(ci + 1, '(') {
                    continue;
                }
                let name = tok.text.as_str();
                // Its own definition (`fn name(`) is not a call.
                if ci > 0 && pf.text(ci - 1) == "fn" {
                    continue;
                }
                let targets = resolve(pf, ci, name, caller, table);
                for callee in targets {
                    calls.push(Call { caller, callee, file_idx, ci, line: tok.line });
                }
            }
        }
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); table.fns.len()];
        for c in &calls {
            callees[c.caller].push(c.callee);
        }
        for list in &mut callees {
            list.sort_unstable();
            list.dedup();
        }
        CallGraph { calls, callees }
    }
}

/// Resolve the call at `ci` (ident `name` followed by `(`) to zero or more
/// symbol-table entries.
fn resolve(
    pf: &ParsedFile,
    ci: usize,
    name: &str,
    caller: usize,
    table: &SymbolTable,
) -> Vec<usize> {
    // `recv.name(` — a method call.
    if ci > 0 && pf.is_punct(ci - 1, '.') {
        let bare_self = ci >= 2
            && pf.text(ci - 2) == "self"
            && !(ci >= 3 && (pf.is_punct(ci - 3, '.') || pf.is_punct(ci - 3, ':')));
        if bare_self {
            // `self.name(` — the enclosing impl owner's method.
            let Some(owner) = table.fns[caller].owner.as_deref() else { return Vec::new() };
            return owned_defs(table, owner, name);
        }
        // `recv.name(` — bind only a workspace-unique, non-std name.
        if COMMON_STD_METHODS.contains(&name) {
            return Vec::new();
        }
        let owned: Vec<usize> = table
            .defs_named(name)
            .iter()
            .copied()
            .filter(|&i| table.fns[i].owner.is_some())
            .collect();
        let owners: Vec<&str> =
            owned.iter().map(|&i| table.fns[i].owner.as_deref().unwrap_or("")).collect();
        let unique_owner = owners.windows(2).all(|w| w[0] == w[1]);
        return if !owned.is_empty() && unique_owner { owned } else { Vec::new() };
    }
    // `qual::name(` — a path-qualified call.
    if ci >= 3 && pf.is_punct(ci - 1, ':') && pf.is_punct(ci - 2, ':') {
        let Some(qual) = pf.tok(ci - 3).filter(|t| t.kind == TokenKind::Ident) else {
            return Vec::new(); // `<T as Trait>::name(` and friends: skip.
        };
        let qual = qual.text.as_str();
        if qual == "Self" {
            let Some(owner) = table.fns[caller].owner.as_deref() else { return Vec::new() };
            return owned_defs(table, owner, name);
        }
        if table.owners.contains(qual) {
            return owned_defs(table, qual, name);
        }
        if table.modules.contains(qual) {
            return free_defs(pf, table, name);
        }
        return Vec::new(); // std / foreign qualifier.
    }
    // Bare `name(` — a free-function call (or a keyword / tuple ctor,
    // which resolves to nothing because no free fn carries that name).
    if CALL_KEYWORDS.contains(&name) {
        return Vec::new();
    }
    free_defs(pf, table, name)
}

/// Definitions of `name` owned by `owner`.
fn owned_defs(table: &SymbolTable, owner: &str, name: &str) -> Vec<usize> {
    table
        .defs_named(name)
        .iter()
        .copied()
        .filter(|&i| table.fns[i].owner.as_deref() == Some(owner))
        .collect()
}

/// Free-function definitions of `name`, narrowest scope that has any:
/// same file, then same crate, then the whole workspace.
fn free_defs(pf: &ParsedFile, table: &SymbolTable, name: &str) -> Vec<usize> {
    let frees: Vec<usize> =
        table.defs_named(name).iter().copied().filter(|&i| table.fns[i].owner.is_none()).collect();
    for scope in [
        frees
            .iter()
            .copied()
            .filter(|&i| table.fns[i].file == pf.source.rel_path)
            .collect::<Vec<_>>(),
        frees.iter().copied().filter(|&i| table.fns[i].crate_name == pf.crate_name).collect(),
        frees.clone(),
    ] {
        if !scope.is_empty() {
            return scope;
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn build(srcs: &[(&str, &str, &str)]) -> (Vec<ParsedFile>, SymbolTable, CallGraph) {
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(krate, path, src)| ParsedFile::new(krate, SourceFile::parse(path, src)))
            .collect();
        let table = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &table);
        (files, table, graph)
    }

    fn edges(table: &SymbolTable, graph: &CallGraph) -> Vec<(String, String)> {
        graph
            .calls
            .iter()
            .map(|c| (table.fns[c.caller].qualified(), table.fns[c.callee].qualified()))
            .collect()
    }

    #[test]
    fn free_calls_prefer_the_same_file_then_crate() {
        let (_, t, g) = build(&[
            ("els-core", "crates/core/src/a.rs", "fn helper() {}\nfn caller() { helper(); }"),
            ("els-core", "crates/core/src/b.rs", "fn helper() {}"),
            ("els-exec", "crates/exec/src/c.rs", "fn caller2() { helper(); }"),
        ]);
        let e = edges(&t, &g);
        // a.rs caller resolves to its own file's helper only.
        assert!(e.contains(&("caller".into(), "helper".into())));
        let a_caller_edges =
            g.calls.iter().filter(|c| t.fns[c.caller].file == "crates/core/src/a.rs").count();
        assert_eq!(a_caller_edges, 1);
        // c.rs has no crate-local helper: both core candidates are taken.
        let c2 = t.by_name["caller2"][0];
        assert_eq!(g.callees[c2].len(), 2);
    }

    #[test]
    fn qualified_and_self_calls_resolve_to_owners() {
        let (_, t, g) = build(&[(
            "els-core",
            "crates/core/src/x.rs",
            "impl Est { fn inner(&self) {} fn outer(&self) { self.inner(); Self::assoc(); } fn assoc() {} }\n\
             fn free() { Est::assoc(); }",
        )]);
        let e = edges(&t, &g);
        assert!(e.contains(&("Est::outer".into(), "Est::inner".into())));
        assert!(e.contains(&("Est::outer".into(), "Est::assoc".into())));
        assert!(e.contains(&("free".into(), "Est::assoc".into())));
    }

    #[test]
    fn module_qualified_free_calls_resolve_and_std_paths_do_not() {
        let (_, t, g) = build(&[
            ("els-exec", "crates/exec/src/error.rs", "pub fn rowid(i: usize) -> u32 { i as u32 }"),
            (
                "els-exec",
                "crates/exec/src/filter.rs",
                "fn f() { crate::error::rowid(3); std::mem::swap(&mut 1, &mut 2); String::from(\"x\"); }",
            ),
        ]);
        let e = edges(&t, &g);
        assert_eq!(e, vec![("f".to_string(), "rowid".to_string())]);
    }

    #[test]
    fn unqualified_methods_bind_only_unique_non_std_names() {
        let (_, t, g) = build(&[(
            "els-core",
            "crates/core/src/x.rs",
            "impl Hist { fn record_q(&mut self) {} fn len(&self) -> usize { 0 } }\n\
             impl Other { fn dup(&self) {} }\n\
             impl More { fn dup(&self) {} }\n\
             fn f(h: &mut Hist, o: &Other) { h.record_q(); h.len(); o.dup(); }",
        )]);
        let e = edges(&t, &g);
        // record_q: unique owner, not a std name -> edge.
        assert!(e.contains(&("f".into(), "Hist::record_q".into())));
        // len: blacklisted std name -> no edge even though workspace-unique.
        assert!(!e.iter().any(|(_, callee)| callee == "Hist::len"));
        // dup: two owners define it -> ambiguous, no edge.
        assert!(!e.iter().any(|(_, callee)| callee.ends_with("::dup")));
    }

    #[test]
    fn macros_keywords_and_ctors_produce_no_edges() {
        let (_, t, g) = build(&[(
            "els-core",
            "crates/core/src/x.rs",
            "fn target() {}\n\
             fn f() -> Option<u32> { assert!(true); vec![1]; if (1 > 0) { return Some(3); } None }",
        )]);
        assert!(edges(&t, &g).is_empty());
        let _ = t;
    }

    #[test]
    fn decoy_calls_in_strings_comments_and_tests_are_invisible() {
        let (_, t, g) = build(&[(
            "els-core",
            "crates/core/src/x.rs",
            "fn target() {}\n\
             // target();\n\
             /* target(); */\n\
             fn f() { let s = \"target()\"; let r = r#\"target()\"#; }\n\
             #[cfg(test)]\nmod tests { fn t() { super::target(); } }",
        )]);
        assert!(edges(&t, &g).is_empty());
        let _ = t;
    }
}
