//! Estimation-accuracy measurement for the throughput/kernels benches.
//!
//! Runs a workload through [`Database::explain_analyze`] under each of the
//! paper's four estimator presets and summarizes the per-join q-errors —
//! the same estimated-vs-actual comparison as the paper's Section 8 table,
//! but folded to median/p95/max so the BENCH JSONs can carry an `accuracy`
//! section and the smoke gate can pin a regression threshold on it.

use els::engine::Database;
use els_optimizer::{EstimatorPreset, OptimizerOptions};
use els_storage::Table;

use crate::workload::quantile;

/// The per-preset q-error summary over one workload.
#[derive(Debug, Clone)]
pub struct AccuracySummary {
    /// The paper's preset label, e.g. `Orig. ELS`.
    pub label: String,
    /// The selectivity rule's short name ("M", "SS", "LS", …).
    pub rule: String,
    /// Number of join-operator q-error samples.
    pub samples: usize,
    /// Median q-error (nearest-rank).
    pub median_q: f64,
    /// 95th-percentile q-error.
    pub p95_q: f64,
    /// Worst q-error.
    pub max_q: f64,
}

/// All four of the paper's estimator presets, in table order.
pub const PRESETS: [EstimatorPreset; 4] =
    [EstimatorPreset::SmNoPtc, EstimatorPreset::Sm, EstimatorPreset::Sss, EstimatorPreset::Els];

/// Measure estimation accuracy: for each preset, build a database over
/// `tables`, `explain_analyze` every query, and pool the join-operator
/// q-errors. Panics if a workload query fails — these are benchmark
/// fixtures, not user input.
pub fn preset_accuracy(tables: &[Table], queries: &[String]) -> Vec<AccuracySummary> {
    PRESETS
        .iter()
        .map(|&preset| {
            let mut db = Database::new();
            // Same plan space as the throughput engine so the analyzed
            // plans match the ones the benches execute.
            db.set_optimizer_options(
                OptimizerOptions::preset(preset).with_bushy_trees().with_hash_join(),
            );
            for table in tables {
                db.register(table.clone()).expect("accuracy fixture tables register");
            }
            let mut qerrs: Vec<f64> = Vec::new();
            let mut rule = String::new();
            for sql in queries {
                let report = db.explain_analyze(sql).expect("accuracy workload queries execute");
                rule = report.rule.clone();
                qerrs.extend(report.join_operators().map(|op| op.q_error()));
            }
            qerrs.sort_by(f64::total_cmp);
            let (median_q, p95_q, max_q) = if qerrs.is_empty() {
                (1.0, 1.0, 1.0)
            } else {
                (quantile(&qerrs, 0.5), quantile(&qerrs, 0.95), *qerrs.last().unwrap())
            };
            AccuracySummary {
                label: preset.label().to_owned(),
                rule,
                samples: qerrs.len(),
                median_q,
                p95_q,
                max_q,
            }
        })
        .collect()
}

/// Render the accuracy summaries as a JSON array (hand-rolled; infinities
/// become the string `"inf"` to stay valid JSON).
pub fn accuracy_json(summaries: &[AccuracySummary]) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.4}")
        } else {
            "\"inf\"".to_owned()
        }
    }
    let rows: Vec<String> = summaries
        .iter()
        .map(|s| {
            format!(
                "{{\"label\": \"{}\", \"rule\": \"{}\", \"samples\": {}, \
                 \"median_q\": {}, \"p95_q\": {}, \"max_q\": {}}}",
                s.label,
                s.rule,
                s.samples,
                num(s.median_q),
                num(s.p95_q),
                num(s.max_q)
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::starburst_experiment_tables_sized;

    #[test]
    fn accuracy_ranks_els_at_or_above_the_baselines() {
        let tables = starburst_experiment_tables_sized(7, &[50, 500, 2_000, 4_000usize]);
        let queries = vec![crate::SECTION8_SQL.to_owned()];
        let summaries = preset_accuracy(&tables, &queries);
        assert_eq!(summaries.len(), 4);
        let els = summaries.iter().find(|s| s.label == "Orig. ELS").unwrap();
        let sm = summaries.iter().find(|s| s.label == "Orig. SM").unwrap();
        assert_eq!(els.samples, 3, "three joins in the 4-table chain");
        // The paper's headline: ELS estimates the chain well; plain SM
        // without closure is far off.
        assert!(els.median_q <= sm.median_q, "ELS {} vs SM {}", els.median_q, sm.median_q);
        assert!(els.median_q < 2.0, "ELS median q-error degraded: {}", els.median_q);
    }

    #[test]
    fn accuracy_json_is_stable_and_inf_safe() {
        let summaries = vec![AccuracySummary {
            label: "Orig. ELS".to_owned(),
            rule: "LS".to_owned(),
            samples: 3,
            median_q: 1.0,
            p95_q: 2.5,
            max_q: f64::INFINITY,
        }];
        let json = accuracy_json(&summaries);
        assert_eq!(
            json,
            "[{\"label\": \"Orig. ELS\", \"rule\": \"LS\", \"samples\": 3, \
             \"median_q\": 1.0000, \"p95_q\": 2.5000, \"max_q\": \"inf\"}]"
        );
    }
}
