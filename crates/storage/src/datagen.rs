//! Seeded synthetic data generation.
//!
//! The paper's experiment (Section 8) uses four generated tables S, M, B, G
//! whose join columns are uniform with known column cardinalities. The
//! generators here reproduce those tables deterministically from a seed, and
//! additionally provide Zipf-distributed columns for the skew-sensitivity
//! study (the paper's Section 9 names Zipfian data as the important case its
//! assumptions do not cover).
//!
//! Distribution notes:
//!
//! * [`Distribution::CycleInt`] yields `start + (row mod modulus)` — an
//!   *exactly* uniform column with column cardinality `modulus` (when the
//!   table has at least `modulus` rows). This is the distribution under which
//!   the paper's uniformity assumption holds with equality, so estimator
//!   tests against it are exact.
//! * [`Distribution::UniformInt`] samples uniformly at random; column
//!   cardinality is then governed by the urn model of the paper's Section 5,
//!   which makes it the right generator for validating that model.
//! * [`Distribution::ZipfInt`] samples ranks from a Zipf(θ) law
//!   (`P(rank k) ∝ 1/k^θ`), per the paper's references [17, 3, 6].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column::ColumnVector;
use crate::table::Table;
use crate::value::{DataType, Value};

/// How the values of one generated column are distributed.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// `start, start+1, start+2, …` — a key column: column cardinality equals
    /// the table cardinality.
    SequentialInt {
        /// First value.
        start: i64,
    },
    /// `start + (row mod modulus)` — exactly uniform with `modulus` distinct
    /// values.
    CycleInt {
        /// Number of distinct values.
        modulus: u64,
        /// Smallest value.
        start: i64,
    },
    /// Independent uniform draws from `lo..=hi`.
    UniformInt {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Zipf-distributed ranks: value `start + k` (k in `0..n`) drawn with
    /// probability proportional to `1/(k+1)^theta`. `theta = 0` degenerates
    /// to uniform.
    ZipfInt {
        /// Number of distinct ranks.
        n: u64,
        /// Skew parameter θ ≥ 0.
        theta: f64,
        /// Value of the most frequent rank.
        start: i64,
    },
    /// Every row holds the same value.
    ConstInt {
        /// The constant.
        value: i64,
    },
    /// Independent uniform floats from `lo..hi`.
    UniformFloat {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Strings `"{prefix}{row mod modulus}"` — a cyclic tag column.
    StrTag {
        /// Common prefix.
        prefix: String,
        /// Number of distinct tags.
        modulus: u64,
    },
    /// Wraps another distribution, replacing a fraction of rows with NULL.
    WithNulls {
        /// The underlying distribution.
        inner: Box<Distribution>,
        /// Probability in `[0, 1]` that a row is NULL.
        null_fraction: f64,
    },
}

impl Distribution {
    /// The [`DataType`] of columns produced by this distribution.
    pub fn data_type(&self) -> DataType {
        match self {
            Distribution::SequentialInt { .. }
            | Distribution::CycleInt { .. }
            | Distribution::UniformInt { .. }
            | Distribution::ZipfInt { .. }
            | Distribution::ConstInt { .. } => DataType::Int,
            Distribution::UniformFloat { .. } => DataType::Float,
            Distribution::StrTag { .. } => DataType::Str,
            Distribution::WithNulls { inner, .. } => inner.data_type(),
        }
    }
}

/// Specification of one generated column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Value distribution.
    pub distribution: Distribution,
}

impl ColumnSpec {
    /// Create a column spec.
    pub fn new(name: impl Into<String>, distribution: Distribution) -> Self {
        ColumnSpec { name: name.into(), distribution }
    }
}

/// Specification of one generated table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Number of rows to generate.
    pub rows: usize,
    /// Column specifications, in schema order.
    pub columns: Vec<ColumnSpec>,
}

impl TableSpec {
    /// Start a spec with no columns.
    pub fn new(name: impl Into<String>, rows: usize) -> Self {
        TableSpec { name: name.into(), rows, columns: Vec::new() }
    }

    /// Add a column (builder style).
    #[must_use]
    pub fn column(mut self, spec: ColumnSpec) -> Self {
        self.columns.push(spec);
        self
    }

    /// Generate the table. The same `(spec, seed)` pair always produces the
    /// same table; distinct columns use decorrelated substreams.
    pub fn generate(&self, seed: u64) -> Table {
        let columns = self
            .columns
            .iter()
            .enumerate()
            .map(|(ci, spec)| {
                // Derive a per-column seed so adding a column never perturbs
                // the data of its neighbours.
                let col_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(ci as u64 + 1);
                let col = generate_column(&spec.distribution, self.rows, col_seed);
                (spec.name.clone(), col)
            })
            .collect();
        // Every generated column has exactly `self.rows` rows, so
        // construction cannot fail; degrade to an empty table rather than
        // assert.
        Table::new(self.name.clone(), columns).unwrap_or_else(|_| Table::empty(&self.name, &[]))
    }
}

/// Generate a single column of `rows` values.
pub fn generate_column(dist: &Distribution, rows: usize, seed: u64) -> ColumnVector {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut col = ColumnVector::with_capacity(dist.data_type(), rows);
    let zipf = match dist {
        Distribution::ZipfInt { n, theta, .. } => Some(ZipfSampler::new(*n, *theta)),
        Distribution::WithNulls { inner, .. } => {
            if let Distribution::ZipfInt { n, theta, .. } = inner.as_ref() {
                Some(ZipfSampler::new(*n, *theta))
            } else {
                None
            }
        }
        _ => None,
    };
    for row in 0..rows {
        let v = sample(dist, row, &mut rng, zipf.as_ref());
        // Generators produce values of the declared column type; the
        // impossible mismatch degrades to a NULL slot (always accepted)
        // rather than aborting.
        if col.push(v).is_err() {
            let _ = col.push(Value::Null);
        }
    }
    col
}

fn sample(dist: &Distribution, row: usize, rng: &mut StdRng, zipf: Option<&ZipfSampler>) -> Value {
    match dist {
        Distribution::SequentialInt { start } => Value::Int(start + row as i64),
        Distribution::CycleInt { modulus, start } => {
            Value::Int(start + (row as u64 % modulus.max(&1).to_owned()) as i64)
        }
        Distribution::UniformInt { lo, hi } => Value::Int(rng.gen_range(*lo..=*hi)),
        Distribution::ZipfInt { start, .. } => {
            // The sampler is prepared for every zipf distribution; a
            // missing one (impossible by construction) samples rank 0.
            let k = match zipf {
                Some(z) => z.sample(rng),
                None => 0,
            };
            Value::Int(start + k as i64)
        }
        Distribution::ConstInt { value } => Value::Int(*value),
        Distribution::UniformFloat { lo, hi } => Value::Float(rng.gen_range(*lo..*hi)),
        Distribution::StrTag { prefix, modulus } => {
            Value::Str(format!("{prefix}{}", row as u64 % modulus.max(&1).to_owned()))
        }
        Distribution::WithNulls { inner, null_fraction } => {
            if rng.gen::<f64>() < *null_fraction {
                Value::Null
            } else {
                sample(inner, row, rng, zipf)
            }
        }
    }
}

/// Inverse-CDF Zipf sampler with a precomputed cumulative table.
///
/// For the table sizes exercised here (n ≤ ~10⁶) a binary-searched CDF is
/// simpler and faster to build than rejection-inversion, and sampling is
/// O(log n).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Prepare a sampler over ranks `0..n` with skew `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative/not finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the first
        // rank whose cumulative mass reaches u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Convenience: the paper's Section 8 catalog. Returns the four tables
/// S (1000 rows), M (10000), B (50000), G (100000), each with a single join
/// column named after the table (`s`, `m`, `b`, `g`) whose column cardinality
/// equals the table cardinality, exactly as specified in the paper.
///
/// The join columns are sequential over the same domain, so the containment
/// assumption holds exactly: values of `s` ⊆ values of `m` ⊆ values of `b` ⊆
/// values of `g`, and the true size of any join combination filtered by
/// `s < 100` is exactly 100 — the ground truth quoted in the paper.
pub fn starburst_experiment_tables(seed: u64) -> Vec<Table> {
    starburst_experiment_tables_sized(seed, &[1_000, 10_000, 50_000, 100_000])
}

/// [`starburst_experiment_tables`] at caller-chosen cardinalities for
/// S/M/B/G (`sizes` must have four entries). Used by the smoke-scale bench
/// gates, which need the same schema and containment structure at a
/// fraction of the rows.
pub fn starburst_experiment_tables_sized(seed: u64, sizes: &[usize; 4]) -> Vec<Table> {
    let specs = [("S", "s"), ("M", "m"), ("B", "b"), ("G", "g")];
    specs
        .iter()
        .zip(sizes)
        .map(|((table, col), &rows)| {
            TableSpec::new(*table, rows)
                .column(ColumnSpec::new(*col, Distribution::SequentialInt { start: 0 }))
                // A payload column so tuples have realistic width.
                .column(ColumnSpec::new(
                    "payload",
                    Distribution::UniformInt { lo: 0, hi: 1_000_000 },
                ))
                .generate(seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_a_key() {
        let t = TableSpec::new("t", 100)
            .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 10 }))
            .generate(7);
        let c = t.column_by_name("k").unwrap();
        assert_eq!(c.distinct_count(), 100);
        assert_eq!(c.get(0).unwrap(), Value::Int(10));
        assert_eq!(c.get(99).unwrap(), Value::Int(109));
    }

    #[test]
    fn cycle_has_exact_cardinality_and_uniform_frequencies() {
        let t = TableSpec::new("t", 1000)
            .column(ColumnSpec::new("c", Distribution::CycleInt { modulus: 10, start: 0 }))
            .generate(7);
        let c = t.column_by_name("c").unwrap();
        assert_eq!(c.distinct_count(), 10);
        // Each value appears exactly 100 times.
        let mut counts = [0usize; 10];
        for v in c.iter() {
            counts[v.as_int().unwrap() as usize] += 1;
        }
        assert!(counts.iter().all(|&n| n == 100));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = TableSpec::new("t", 50)
            .column(ColumnSpec::new("u", Distribution::UniformInt { lo: 0, hi: 9 }));
        let a = spec.generate(1);
        let b = spec.generate(1);
        let c = spec.generate(2);
        let col = |t: &Table| t.column_by_name("u").unwrap().iter().collect::<Vec<_>>();
        assert_eq!(col(&a), col(&b));
        assert_ne!(col(&a), col(&c));
    }

    #[test]
    fn adding_a_column_does_not_perturb_existing_ones() {
        let base = TableSpec::new("t", 50)
            .column(ColumnSpec::new("u", Distribution::UniformInt { lo: 0, hi: 99 }));
        let extended =
            base.clone().column(ColumnSpec::new("v", Distribution::UniformInt { lo: 0, hi: 99 }));
        let a = base.generate(3);
        let b = extended.generate(3);
        let col = |t: &Table| t.column_by_name("u").unwrap().iter().collect::<Vec<_>>();
        assert_eq!(col(&a), col(&b));
    }

    #[test]
    fn uniform_int_stays_in_range() {
        let c = generate_column(&Distribution::UniformInt { lo: -5, hi: 5 }, 500, 9);
        for v in c.iter() {
            let x = v.as_int().unwrap();
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let c = generate_column(&Distribution::ZipfInt { n: 10, theta: 0.0, start: 0 }, 10_000, 11);
        let mut counts = [0usize; 10];
        for v in c.iter() {
            counts[v.as_int().unwrap() as usize] += 1;
        }
        for &n in &counts {
            // Expected 1000 each; allow generous sampling slack.
            assert!((700..=1300).contains(&n), "count {n} too far from uniform");
        }
    }

    #[test]
    fn zipf_high_theta_is_skewed_toward_rank_zero() {
        let c =
            generate_column(&Distribution::ZipfInt { n: 100, theta: 1.5, start: 0 }, 10_000, 13);
        let zero = c.iter().filter(|v| v.as_int() == Some(0)).count();
        let tail = c.iter().filter(|v| v.as_int().unwrap_or(0) >= 50).count();
        assert!(zero > 2_000, "rank 0 should dominate, got {zero}");
        assert!(tail < zero / 4, "tail {tail} should be rare vs head {zero}");
    }

    #[test]
    fn with_nulls_produces_requested_fraction() {
        let c = generate_column(
            &Distribution::WithNulls {
                inner: Box::new(Distribution::ConstInt { value: 1 }),
                null_fraction: 0.25,
            },
            10_000,
            17,
        );
        let nulls = c.null_count();
        assert!((2_000..=3_000).contains(&nulls), "null count {nulls}");
    }

    #[test]
    fn str_tag_cycles() {
        let c = generate_column(&Distribution::StrTag { prefix: "cat".into(), modulus: 3 }, 9, 1);
        assert_eq!(c.get(0).unwrap(), Value::from("cat0"));
        assert_eq!(c.get(4).unwrap(), Value::from("cat1"));
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn starburst_tables_match_paper_statistics() {
        let tables = starburst_experiment_tables(42);
        let expect =
            [("S", "s", 1_000usize), ("M", "m", 10_000), ("B", "b", 50_000), ("G", "g", 100_000)];
        for (t, (name, col, rows)) in tables.iter().zip(expect) {
            assert_eq!(t.name(), name);
            assert_eq!(t.num_rows(), rows);
            assert_eq!(t.column_by_name(col).unwrap().distinct_count(), rows);
        }
    }

    #[test]
    fn starburst_true_join_size_is_100() {
        // With sequential domains and the filter s < 100, exactly the rows
        // with key 0..100 survive every join — the paper's ground truth.
        let tables = starburst_experiment_tables(42);
        let s = &tables[0];
        let survivors =
            s.column_by_name("s").unwrap().iter().filter(|v| v.as_int().unwrap() < 100).count();
        assert_eq!(survivors, 100);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
