//! `els-server` — a multi-tenant TCP front door for the ELS engine.
//!
//! Puts a wire on the [`els::engine::Engine`] facade (see DESIGN.md §4i):
//!
//! * **Protocol** ([`protocol`]) — a minimal line-based SQL exchange
//!   (`HELLO` / one query per line / `OK`+rows / typed `ERR` lines),
//!   chosen over a binary framing because every rule is greppable in a
//!   packet capture and testable as pure string code.
//! * **Tenancy** ([`tenant`]) — tenant id resolved once at `HELLO`: each
//!   tenant gets its own catalog (structural isolation) and its own
//!   plan-cache lane on a shared cache (keyed isolation through
//!   `OptimizerOptions::config_fingerprint`).
//! * **Admission control** ([`admission`]) — a bounded queue between the
//!   acceptor and a fixed worker pool; a full queue rejects with a typed
//!   [`ServerError::Overloaded`] line instead of queueing unboundedly.
//! * **Graceful degradation** ([`server`]) — at the configured queue
//!   watermark, handlers serve cached plans only
//!   ([`els::engine::Engine::execute_if_cached`]) and shed the rest with
//!   `ERR shed`, sacrificing optimizer CPU before availability.
//! * **Observability** — connection/query/reject/shed counters on every
//!   [`ServerHandle`] and mirrored into the process-wide
//!   [`els_exec::MetricsRegistry`] JSON under `"server"`.
//!
//! Thread creation is confined to [`pool`], the workspace's second
//! allowlisted parallelism seam after `els-exec::scheduler`.
//!
//! ```no_run
//! use els_server::{serve, ServerConfig, Tenants, Client};
//! use std::time::Duration;
//!
//! let tenants = Tenants::isolated(&["acme"], 256).unwrap();
//! tenants.resolve("acme").unwrap(); // register tables here
//! let handle = serve("127.0.0.1:0", tenants, ServerConfig::default()).unwrap();
//! let mut c = Client::connect(handle.addr(), "acme", Duration::from_secs(5)).unwrap();
//! let reply = c.query("SELECT COUNT(*) FROM t").unwrap();
//! assert!(reply.count > 0);
//! c.quit();
//! handle.shutdown();
//! ```

pub mod admission;
pub mod client;
pub mod error;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod tenant;

pub use client::{Client, Reply};
pub use error::{ServerError, ServerResult};
pub use pool::{serve, ServerHandle};
pub use server::ServerConfig;
pub use tenant::Tenants;
