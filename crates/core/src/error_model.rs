//! Propagation of base-statistic errors through join estimates.
//!
//! The paper's Section 1 cites Ioannidis & Christodoulakis [4]: even a
//! *correct* estimation algorithm amplifies errors in its inputs, and the
//! amplification grows with the number of joins. This module provides both
//! sides of that analysis for the single-equivalence-class closed form
//! (Equation 3):
//!
//! * [`worst_case_amplification`] — the analytic worst case: with every
//!   cardinality off by a factor `(1+ε)` and every distinct count off by
//!   `(1−δ)`, the n-way estimate is off by `(1+ε)ⁿ / (1−δ)ⁿ⁻¹`, i.e.
//!   exponential in n.
//! * [`perturb_statistics`] — randomized perturbation of a
//!   [`QueryStatistics`] for Monte-Carlo studies (each statistic is
//!   multiplied by an independent factor log-uniform in `[1/(1+ε), 1+ε]`,
//!   preserving validity: distinct counts stay within table cardinalities).
//!
//! Experiment F10 uses both to replay [4]'s qualitative result inside this
//! framework: Rule LS is exactly right with exact inputs (F1), yet its
//! output error still compounds when the *catalog* is wrong — motivating
//! the paper's care about keeping the statistics pipeline (Steps 3–5)
//! consistent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::QueryStatistics;

/// Worst-case multiplicative error of an n-way single-class estimate when
/// every table cardinality is off by at most a factor `1 + eps_card` (in
/// the inflating direction) and every distinct count by at most a factor
/// `1 - eps_distinct` (in the deflating direction — the combination that
/// maximizes the estimate).
///
/// # Examples
///
/// ```
/// use els_core::error_model::worst_case_amplification;
/// // 10% errors on two tables: (1.1)^2 / (0.9)^1 ≈ 1.34.
/// let r = worst_case_amplification(2, 0.1, 0.1);
/// assert!((r - 1.1f64.powi(2) / 0.9).abs() < 1e-12);
/// // Amplification grows with the join count.
/// assert!(worst_case_amplification(8, 0.1, 0.1) > worst_case_amplification(4, 0.1, 0.1));
/// ```
/// The **q-error** of an estimate against the observed truth:
/// `max(est/act, act/est)`, the standard symmetric multiplicative error
/// metric for cardinality estimation (equivalent to the paper's Section 8
/// "error ratio" with over- and under-estimation folded onto one scale).
///
/// Both sides are floored at 1 tuple so that exact zero-row operators —
/// common under contradictory predicates — compare as perfect rather than
/// dividing by zero; a perfect estimate therefore scores exactly `1.0`.
/// Non-finite inputs score `f64::INFINITY` (an estimator that produced NaN
/// is maximally wrong, not "unmeasurable").
///
/// # Examples
///
/// ```
/// use els_core::error_model::q_error;
/// assert_eq!(q_error(100.0, 100.0), 1.0);
/// assert_eq!(q_error(10.0, 1000.0), 100.0);   // under-estimate
/// assert_eq!(q_error(1000.0, 10.0), 100.0);   // over-estimate, same score
/// assert_eq!(q_error(0.0, 0.0), 1.0);         // empty result, exact
/// assert_eq!(q_error(f64::NAN, 5.0), f64::INFINITY);
/// ```
pub fn q_error(estimate: f64, actual: f64) -> f64 {
    if !estimate.is_finite() || !actual.is_finite() {
        return f64::INFINITY;
    }
    let est = estimate.max(1.0);
    let act = actual.max(1.0);
    (est / act).max(act / est)
}

pub fn worst_case_amplification(n_tables: usize, eps_card: f64, eps_distinct: f64) -> f64 {
    if n_tables == 0 {
        return 1.0;
    }
    // Saturate rather than wrap for absurd table counts: the
    // amplification is monotone in n, and powi(i32::MAX) overflows to
    // infinity, which is the honest answer there.
    let n = i32::try_from(n_tables).unwrap_or(i32::MAX);
    let num = (1.0 + eps_card.max(0.0)).powi(n);
    let den = (1.0 - eps_distinct.clamp(0.0, 0.999_999)).powi(n - 1);
    num / den
}

/// Multiply every cardinality and distinct count by an independent random
/// factor log-uniform in `[1/(1+eps), 1+eps]`, then re-clamp distinct
/// counts to the perturbed cardinalities so the result stays valid.
/// Deterministic in `seed`.
pub fn perturb_statistics(stats: &QueryStatistics, eps: f64, seed: u64) -> QueryStatistics {
    let mut rng = StdRng::seed_from_u64(seed);
    let factor = move |rng: &mut StdRng| -> f64 {
        if eps <= 0.0 {
            return 1.0;
        }
        let hi = (1.0 + eps).ln();
        (rng.gen_range(-hi..hi)).exp()
    };
    let mut out = stats.clone();
    for table in &mut out.tables {
        table.cardinality = (table.cardinality * factor(&mut rng)).max(0.0).round();
        for col in &mut table.columns {
            col.distinct =
                (col.distinct * factor(&mut rng)).max(0.0).round().min(table.cardinality);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn stats() -> QueryStatistics {
        QueryStatistics::new(vec![
            TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(100.0)]),
            TableStatistics::new(5000.0, vec![ColumnStatistics::with_distinct(500.0)]),
        ])
    }

    #[test]
    fn worst_case_grows_exponentially() {
        let r4 = worst_case_amplification(4, 0.2, 0.2);
        let r8 = worst_case_amplification(8, 0.2, 0.2);
        // Doubling n should (more than) square the n=4 growth beyond the
        // first factor; just assert strong growth.
        assert!(r8 > r4 * r4 / 1.2 - 1e-9, "r4={r4} r8={r8}");
        assert_eq!(worst_case_amplification(0, 0.5, 0.5), 1.0);
        assert_eq!(worst_case_amplification(1, 0.0, 0.0), 1.0);
    }

    #[test]
    fn perturbation_is_deterministic_and_bounded() {
        let base = stats();
        let a = perturb_statistics(&base, 0.2, 9);
        let b = perturb_statistics(&base, 0.2, 9);
        assert_eq!(a, b);
        let c = perturb_statistics(&base, 0.2, 10);
        assert_ne!(a, c);
        for (t, orig) in a.tables.iter().zip(&base.tables) {
            let ratio = t.cardinality / orig.cardinality;
            assert!((1.0 / 1.21..=1.21).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn perturbed_statistics_remain_valid() {
        let base = stats();
        for seed in 0..50 {
            let p = perturb_statistics(&base, 0.5, seed);
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn zero_epsilon_is_identity_up_to_rounding() {
        let base = stats();
        let p = perturb_statistics(&base, 0.0, 1);
        assert_eq!(p, base);
    }

    #[test]
    fn perturbed_estimates_stay_usable() {
        // Els::prepare accepts perturbed statistics and produces finite
        // estimates — the Monte-Carlo loop of F10 relies on this.
        let base = stats();
        let preds = vec![Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0))];
        for seed in 0..20 {
            let p = perturb_statistics(&base, 0.3, seed);
            let els = Els::prepare(&preds, &p, &ElsOptions::default()).unwrap();
            let est = els.estimate_final(&[0, 1]).unwrap();
            assert!(est.is_finite() && est >= 0.0);
        }
    }
}
