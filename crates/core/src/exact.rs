//! Closed-form join sizes under the model assumptions
//! (paper Equations 1–3).
//!
//! For tables `R1..Rn` joined on columns of a *single* equivalence class,
//! with the uniformity and containment assumptions, the result size is
//!
//! ```text
//! ‖R1 ⋈ … ⋈ Rn‖ = (∏ ‖Ri‖) / (∏ d(i), all but the smallest)
//! ```
//!
//! (Equation 3; Equations 1 and 2 are the two-table case). These closed
//! forms serve as ground truth: the paper proves Rule LS's incremental
//! estimates agree with Equation 3, a fact this crate verifies by property
//! test (see `tests/` and [`crate::estimator`]).

/// Equation 1/2: expected size of `R1 ⋈ R2` on one join predicate with
/// column cardinalities `d1`, `d2`.
pub fn two_way(r1: f64, d1: f64, r2: f64, d2: f64) -> f64 {
    if d1 <= 0.0 || d2 <= 0.0 {
        return 0.0;
    }
    r1 * r2 / d1.max(d2)
}

/// Equation 2's selectivity form: `S_J = 1/max(d1, d2)`. Identical to
/// [`crate::join_sel::join_selectivity`]; re-exported here so the equation
/// set is complete in one module.
pub fn selectivity(d1: f64, d2: f64) -> f64 {
    crate::join_sel::join_selectivity(d1, d2)
}

/// Equation 3: expected size of the n-way join of `tables`, each given as
/// `(cardinality, join-column distinct count)`, all join columns in one
/// equivalence class. Returns 0 for an empty input or any empty column.
/// # Examples
///
/// Example 1b's three-way join:
///
/// ```
/// use els_core::exact::n_way;
/// let size = n_way(&[(100.0, 10.0), (1000.0, 100.0), (1000.0, 1000.0)]);
/// assert_eq!(size, 1000.0);
/// ```
pub fn n_way(tables: &[(f64, f64)]) -> f64 {
    if tables.is_empty() {
        return 0.0;
    }
    if tables.iter().any(|&(_, d)| d <= 0.0) {
        return 0.0;
    }
    let numerator: f64 = tables.iter().map(|&(r, _)| r).product();
    let d_min = tables.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min);
    let all_d: f64 = tables.iter().map(|&(_, d)| d).product();
    // Divide by all d except the smallest: ∏d / d_min.
    numerator / (all_d / d_min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_1_example_1b() {
        // ||R2 ⋈ R3|| = 1000·1000/max(100,1000) = 1000.
        assert_eq!(two_way(1000.0, 100.0, 1000.0, 1000.0), 1000.0);
    }

    #[test]
    fn equation_3_example_1b() {
        // (100·1000·1000)/(100·1000) = 1000.
        let t = [(100.0, 10.0), (1000.0, 100.0), (1000.0, 1000.0)];
        assert_eq!(n_way(&t), 1000.0);
    }

    #[test]
    fn n_way_reduces_to_two_way() {
        let t = [(50.0, 5.0), (70.0, 7.0)];
        assert_eq!(n_way(&t), two_way(50.0, 5.0, 70.0, 7.0));
    }

    #[test]
    fn n_way_single_table_is_its_cardinality() {
        assert_eq!(n_way(&[(42.0, 7.0)]), 42.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(n_way(&[]), 0.0);
        assert_eq!(n_way(&[(10.0, 0.0)]), 0.0);
        assert_eq!(two_way(10.0, 0.0, 10.0, 5.0), 0.0);
    }

    #[test]
    fn selectivity_matches_join_sel() {
        assert_eq!(selectivity(10.0, 1000.0), 0.001);
    }

    #[test]
    fn section8_all_prefixes_are_100() {
        // Effective stats after s < 100 under ELS: every table 100 rows,
        // every join column 100 distinct values. Any subset joins to 100.
        let t = [(100.0, 100.0), (100.0, 100.0), (100.0, 100.0), (100.0, 100.0)];
        for k in 1..=4 {
            assert_eq!(n_way(&t[..k]), 100.0);
        }
    }

    #[test]
    fn n_way_is_permutation_invariant() {
        let a = [(100.0, 10.0), (1000.0, 100.0), (500.0, 20.0)];
        let mut b = a;
        b.reverse();
        assert!((n_way(&a) - n_way(&b)).abs() < 1e-9);
    }
}
