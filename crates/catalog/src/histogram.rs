//! Distribution statistics: histograms and most-common-value lists.
//!
//! The paper (Section 5) allows local-predicate selectivities to come from
//! "distribution statistics on y" instead of the uniformity assumption.
//! This module provides the two classic histogram flavours —
//! **equi-width** (fixed-width value ranges) and **equi-depth** (fixed
//! tuple count per bucket, per Piatetsky-Shapiro & Connell [10] and
//! Muralikrishna & DeWitt [8]) — plus a most-common-values list for highly
//! skewed (Zipfian) columns, the case Lynch [6] targets.
//!
//! Histograms are built over the numeric projection of a column; string
//! columns fall back to distinct-count-based estimation in `els-core`.

use std::collections::HashMap;

use els_core::predicate::CmpOp;

/// One histogram bucket over `[lo, hi]` (buckets partition the domain; a
/// value that falls exactly on an interior boundary belongs to the *later*
/// bucket — the equi-width build convention `idx = (v - lo) / width` — and
/// only the last bucket includes its `hi`).
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Upper bound (inclusive for the last bucket, exclusive otherwise).
    pub hi: f64,
    /// Number of rows in the bucket.
    pub count: u64,
    /// Number of distinct values in the bucket.
    pub distinct: u64,
}

/// An equi-width histogram: the value domain is cut into equal-width ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidthHistogram {
    buckets: Vec<Bucket>,
    total: u64,
}

/// An equi-depth histogram: buckets hold (approximately) equal row counts.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    buckets: Vec<Bucket>,
    total: u64,
}

/// Either histogram flavour, behind one estimation interface.
#[derive(Debug, Clone, PartialEq)]
pub enum Histogram {
    /// Equal-width buckets.
    EquiWidth(EquiWidthHistogram),
    /// Equal-depth buckets.
    EquiDepth(EquiDepthHistogram),
}

impl Histogram {
    /// Build an equi-width histogram from the (unsorted) non-NULL numeric
    /// values of a column. Returns `None` for empty input or `bucket_count
    /// == 0`.
    pub fn equi_width(values: &[f64], bucket_count: usize) -> Option<Histogram> {
        if values.is_empty() || bucket_count == 0 {
            return None;
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if hi <= lo {
            // Single-valued column: one point bucket. The general path
            // would synthesize width-1 buckets past `hi` (the last one with
            // `hi < lo`) and linearly interpolate inside them, giving e.g.
            // `fraction_below(point + 0.5) == 0.5` instead of 1.
            return Some(Histogram::EquiWidth(EquiWidthHistogram {
                buckets: vec![Bucket { lo, hi: lo, count: values.len() as u64, distinct: 1 }],
                total: values.len() as u64,
            }));
        }
        let nb = bucket_count.min(values.len()).max(1);
        let width = (hi - lo) / nb as f64;
        let mut counts = vec![0u64; nb];
        let mut distinct: Vec<HashMap<u64, ()>> = vec![HashMap::new(); nb];
        for &v in values {
            let idx = (((v - lo) / width) as usize).min(nb - 1);
            counts[idx] += 1;
            distinct[idx].insert(v.to_bits(), ());
        }
        let buckets = (0..nb)
            .map(|i| Bucket {
                lo: lo + width * i as f64,
                hi: if i == nb - 1 { hi } else { lo + width * (i + 1) as f64 },
                count: counts[i],
                distinct: distinct[i].len() as u64,
            })
            .collect();
        Some(Histogram::EquiWidth(EquiWidthHistogram { buckets, total: values.len() as u64 }))
    }

    /// Build an equi-depth histogram. Values are sorted internally; equal
    /// values never straddle a bucket boundary (so equality estimates inside
    /// one bucket stay meaningful).
    pub fn equi_depth(values: &[f64], bucket_count: usize) -> Option<Histogram> {
        if values.is_empty() || bucket_count == 0 {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let nb = bucket_count.min(n).max(1);
        let target = n.div_ceil(nb);
        let mut buckets = Vec::with_capacity(nb);
        let mut start = 0usize;
        while start < n {
            let mut end = (start + target).min(n);
            // Extend so equal values stay together.
            while end < n && sorted[end] == sorted[end - 1] {
                end += 1;
            }
            let slice = &sorted[start..end];
            let mut distinct = 1u64;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    distinct += 1;
                }
            }
            buckets.push(Bucket {
                lo: slice[0],
                hi: slice[slice.len() - 1],
                count: slice.len() as u64,
                distinct,
            });
            start = end;
        }
        Some(Histogram::EquiDepth(EquiDepthHistogram { buckets, total: n as u64 }))
    }

    fn buckets(&self) -> &[Bucket] {
        match self {
            Histogram::EquiWidth(h) => &h.buckets,
            Histogram::EquiDepth(h) => &h.buckets,
        }
    }

    /// Total number of rows the histogram describes.
    pub fn total_count(&self) -> u64 {
        match self {
            Histogram::EquiWidth(h) => h.total,
            Histogram::EquiDepth(h) => h.total,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets().len()
    }

    /// Estimated fraction of rows with value strictly less than `v`.
    pub fn fraction_below(&self, v: f64) -> f64 {
        let total = self.total_count() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0f64;
        for b in self.buckets() {
            if v <= b.lo {
                break;
            }
            if v > b.hi {
                acc += b.count as f64;
            } else {
                // Linear interpolation inside the bucket.
                let span = (b.hi - b.lo).max(f64::MIN_POSITIVE);
                acc += b.count as f64 * ((v - b.lo) / span).clamp(0.0, 1.0);
                break;
            }
        }
        (acc / total).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows equal to `v` (uniformity within the
    /// containing bucket: `count / distinct` rows per value).
    pub fn fraction_equal(&self, v: f64) -> f64 {
        let total = self.total_count() as f64;
        if total == 0.0 {
            return 0.0;
        }
        // The equi-width builder puts a value sitting exactly on an interior
        // boundary into the *later* bucket (`idx = (v - lo) / width`), so the
        // lookup must prefer the last bucket containing `v` — otherwise a
        // boundary value is estimated with the earlier bucket's
        // `count/distinct` even though it was never counted there. Equi-depth
        // buckets never share a boundary value, so the direction is
        // indifferent for them.
        for b in self.buckets().iter().rev() {
            if v >= b.lo && v <= b.hi {
                let per_value = b.count as f64 / b.distinct.max(1) as f64;
                return (per_value / total).clamp(0.0, 1.0);
            }
        }
        0.0
    }

    /// Estimated probability that a row drawn from this histogram is
    /// **strictly below** a row drawn independently from `other`:
    /// `P(X < Y) = E_Y[F_X(Y)]`, integrated bucket-by-bucket over `other`
    /// — each of `other`'s buckets contributes its row fraction times the
    /// exact average of this histogram's piecewise-linear
    /// [`Histogram::fraction_below`] over the bucket's range (endpoint
    /// trapezoids would overestimate *both* directions at once wherever a
    /// convex CDF kinks inside the other side's bucket, violating
    /// `P(X<Y) + P(Y<X) <= 1`).
    ///
    /// The result is strict on purpose: inclusive variants come from the
    /// complement (`P(X <= Y) = 1 - P(Y < X)`), which keeps "below or
    /// equal = below + equal" exact without a separate pair-equality
    /// integral. A point bucket (`lo == hi`) contributes exactly
    /// `F_X(point)`, so two single-valued columns at the same value give
    /// `P(X < Y) = 0` and `P(X <= Y) = 1`.
    pub fn fraction_pairs_below(&self, other: &Histogram) -> f64 {
        let total = other.total_count() as f64;
        if total == 0.0 || self.total_count() == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for b in other.buckets() {
            let weight = b.count as f64 / total;
            acc += weight * self.mean_fraction_below(b.lo, b.hi);
        }
        acc.clamp(0.0, 1.0)
    }

    /// Average of [`Histogram::fraction_below`] over `[lo, hi]` under a
    /// uniform density — exact for the piecewise-linear interpolated CDF;
    /// plain `fraction_below(lo)` when the interval is a point.
    fn mean_fraction_below(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return self.fraction_below(lo);
        }
        let total = self.total_count() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let width = hi - lo;
        let mut acc = 0.0;
        for b in self.buckets() {
            // This bucket's contribution to the CDF is 0 below `b.lo`, a
            // linear ramp across `[b.lo, b.hi]`, and 1 above `b.hi` (for a
            // point bucket the ramp degenerates to a step at the point).
            let span = (b.hi - b.lo).max(f64::MIN_POSITIVE);
            let (l, h) = (lo.max(b.lo), hi.min(b.hi));
            let mut integral = 0.0;
            if h > l {
                integral += ((h - b.lo).powi(2) - (l - b.lo).powi(2)) / (2.0 * span);
            }
            integral += (hi - b.hi.max(lo)).max(0.0);
            acc += b.count as f64 * integral;
        }
        (acc / (total * width)).clamp(0.0, 1.0)
    }

    /// Selectivity of `column op v` from this histogram.
    pub fn selectivity(&self, op: CmpOp, v: f64) -> f64 {
        match op {
            CmpOp::Eq => self.fraction_equal(v),
            CmpOp::Ne => (1.0 - self.fraction_equal(v)).clamp(0.0, 1.0),
            CmpOp::Lt => self.fraction_below(v),
            CmpOp::Le => (self.fraction_below(v) + self.fraction_equal(v)).clamp(0.0, 1.0),
            CmpOp::Gt => (1.0 - self.fraction_below(v) - self.fraction_equal(v)).clamp(0.0, 1.0),
            CmpOp::Ge => (1.0 - self.fraction_below(v)).clamp(0.0, 1.0),
        }
    }
}

/// The `k` most frequent values of a column with their exact row counts —
/// the sharp tool for equality predicates on skewed data.
#[derive(Debug, Clone, PartialEq)]
pub struct MostCommonValues {
    /// `(value, row count)` pairs, most frequent first.
    entries: Vec<(f64, u64)>,
    /// Total rows in the column (including rows not in the list).
    total: u64,
}

impl MostCommonValues {
    /// Build from the non-NULL numeric values of a column, keeping the top
    /// `k` by frequency. Returns `None` on empty input.
    pub fn build(values: &[f64], k: usize) -> Option<MostCommonValues> {
        if values.is_empty() || k == 0 {
            return None;
        }
        let mut freq: HashMap<u64, u64> = HashMap::new();
        for &v in values {
            *freq.entry(v.to_bits()).or_insert(0) += 1;
        }
        let mut entries: Vec<(f64, u64)> =
            freq.into_iter().map(|(bits, n)| (f64::from_bits(bits), n)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.total_cmp(&b.0)));
        entries.truncate(k);
        Some(MostCommonValues { entries, total: values.len() as u64 })
    }

    /// Exact selectivity of `= v` when `v` is in the list.
    pub fn eq_selectivity(&self, v: f64) -> Option<f64> {
        self.entries.iter().find(|(val, _)| *val == v).map(|(_, n)| *n as f64 / self.total as f64)
    }

    /// The tracked entries.
    pub fn entries(&self) -> &[(f64, u64)] {
        &self.entries
    }

    /// Total row count of the underlying column.
    pub fn total_count(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_0_999() -> Vec<f64> {
        (0..1000).map(|i| i as f64).collect()
    }

    #[test]
    fn equi_width_counts_everything() {
        let h = Histogram::equi_width(&uniform_0_999(), 10).unwrap();
        assert_eq!(h.total_count(), 1000);
        assert_eq!(h.num_buckets(), 10);
        let total: u64 = h.buckets().iter().map(|b| b.count).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn equi_depth_balances_counts() {
        let h = Histogram::equi_depth(&uniform_0_999(), 10).unwrap();
        for b in h.buckets() {
            assert_eq!(b.count, 100);
        }
    }

    #[test]
    fn uniform_range_selectivity_matches_model() {
        for h in [
            Histogram::equi_width(&uniform_0_999(), 20).unwrap(),
            Histogram::equi_depth(&uniform_0_999(), 20).unwrap(),
        ] {
            let s = h.selectivity(CmpOp::Lt, 100.0);
            assert!((s - 0.1).abs() < 0.02, "lt selectivity {s} far from 0.1");
            let s = h.selectivity(CmpOp::Ge, 900.0);
            assert!((s - 0.1).abs() < 0.02, "ge selectivity {s} far from 0.1");
        }
    }

    #[test]
    fn skewed_data_equality_is_sharper_than_uniform() {
        // 900 copies of 0, then 1..=100 once each.
        let mut values = vec![0.0; 900];
        values.extend((1..=100).map(|i| i as f64));
        let h = Histogram::equi_depth(&values, 10).unwrap();
        let hot = h.selectivity(CmpOp::Eq, 0.0);
        // True selectivity 0.9; the uniformity model (1/d = 1/101) is
        // hopeless. The histogram must get within 2x.
        assert!(hot > 0.45, "hot-value selectivity {hot} too low");
        let cold = h.selectivity(CmpOp::Eq, 50.0);
        assert!(cold < 0.05, "cold-value selectivity {cold} too high");
    }

    #[test]
    fn boundaries_clamp_to_zero_and_one() {
        let h = Histogram::equi_width(&uniform_0_999(), 10).unwrap();
        assert_eq!(h.selectivity(CmpOp::Lt, -1.0), 0.0);
        assert_eq!(h.selectivity(CmpOp::Ge, -1.0), 1.0);
        assert_eq!(h.selectivity(CmpOp::Lt, 5000.0), 1.0);
        assert_eq!(h.selectivity(CmpOp::Gt, 5000.0), 0.0);
        assert_eq!(h.selectivity(CmpOp::Eq, 5000.0), 0.0);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(Histogram::equi_width(&[], 10).is_none());
        assert!(Histogram::equi_depth(&[], 10).is_none());
        assert!(Histogram::equi_width(&[1.0], 0).is_none());
        // Single value: one bucket covering a point.
        let h = Histogram::equi_width(&[5.0, 5.0, 5.0], 4).unwrap();
        assert_eq!(h.selectivity(CmpOp::Eq, 5.0), 1.0);
        assert_eq!(h.selectivity(CmpOp::Lt, 5.0), 0.0);
    }

    #[test]
    fn single_valued_column_collapses_to_point_bucket() {
        // Regression: the pre-fix builder synthesized width-1 buckets past
        // `hi` (last bucket with hi < lo) and interpolated inside them, so
        // fraction_below(5.5) on an all-5.0 column came out 0.5.
        let h = Histogram::equi_width(&[5.0, 5.0, 5.0], 4).unwrap();
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.fraction_below(5.5), 1.0);
        // Strictly below the point.
        assert_eq!(h.selectivity(CmpOp::Lt, 4.5), 0.0);
        assert_eq!(h.selectivity(CmpOp::Le, 4.5), 0.0);
        assert_eq!(h.selectivity(CmpOp::Gt, 4.5), 1.0);
        assert_eq!(h.selectivity(CmpOp::Ge, 4.5), 1.0);
        // Strictly above the point.
        assert_eq!(h.selectivity(CmpOp::Lt, 5.5), 1.0);
        assert_eq!(h.selectivity(CmpOp::Le, 5.5), 1.0);
        assert_eq!(h.selectivity(CmpOp::Gt, 5.5), 0.0);
        assert_eq!(h.selectivity(CmpOp::Ge, 5.5), 0.0);
        // At the point itself.
        assert_eq!(h.selectivity(CmpOp::Eq, 5.0), 1.0);
        assert_eq!(h.selectivity(CmpOp::Lt, 5.0), 0.0);
        assert_eq!(h.selectivity(CmpOp::Ge, 5.0), 1.0);
    }

    #[test]
    fn equi_width_boundary_value_uses_later_bucket() {
        // lo=0, hi=4, 2 buckets of width 2: the six 0s land in bucket 0
        // (count 6, distinct 1), while 2.0 and 4.0 land in bucket 1 (count
        // 2, distinct 2) because idx = (v - lo)/width sends a boundary value
        // to the later bucket. The pre-fix lookup matched bucket 0 first and
        // estimated Eq(2.0) at (6/1)/8 = 0.75 instead of (2/2)/8 = 0.125.
        let values = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0, 4.0];
        let h = Histogram::equi_width(&values, 2).unwrap();
        assert_eq!(h.num_buckets(), 2);
        assert_eq!(h.fraction_equal(2.0), 0.125);
    }

    #[test]
    fn equi_depth_boundary_value_keeps_its_own_bucket() {
        // Equi-depth buckets never share a value across a boundary: a value
        // equal to some bucket's hi must still resolve to that bucket under
        // the reversed lookup order.
        let values = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 3.0];
        let h = Histogram::equi_depth(&values, 2).unwrap();
        assert_eq!(h.num_buckets(), 2);
        // Bucket 0 is the four 0s (hi = 0.0): per-value 4 of 8 rows.
        assert_eq!(h.fraction_equal(0.0), 0.5);
        // Bucket 1 is {1,1,2,3}: per-value (4/3)/8 = 1/6.
        assert!((h.fraction_equal(1.0) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn equi_depth_keeps_equal_values_together() {
        // 10 copies each of 0..10; 4 buckets of target 25 would split value
        // groups — the builder must extend to group boundaries.
        let mut values = Vec::new();
        for v in 0..10 {
            values.extend(std::iter::repeat_n(v as f64, 10));
        }
        let h = Histogram::equi_depth(&values, 4).unwrap();
        for b in h.buckets() {
            // count must be a multiple of 10 (whole value groups).
            assert_eq!(b.count % 10, 0, "bucket split a value group: {b:?}");
        }
    }

    #[test]
    fn pairs_below_on_identical_uniform_columns_is_half() {
        for h in [
            Histogram::equi_width(&uniform_0_999(), 10).unwrap(),
            Histogram::equi_depth(&uniform_0_999(), 10).unwrap(),
        ] {
            let lt = h.fraction_pairs_below(&h);
            // True P(X < Y) on 1000 i.i.d. uniform points is
            // (1 - 1/1000)/2 = 0.4995.
            assert!((lt - 0.5).abs() < 0.02, "P(X<Y) {lt} far from 0.5");
            // Strict + strict leaves room for the equality diagonal.
            assert!(2.0 * lt <= 1.0 + 1e-9, "strict halves overlap: {lt}");
        }
    }

    #[test]
    fn pairs_below_on_disjoint_domains_is_degenerate() {
        let low: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let high: Vec<f64> = (0..100).map(|i| 1000.0 + i as f64).collect();
        let hl = Histogram::equi_depth(&low, 8).unwrap();
        let hh = Histogram::equi_depth(&high, 8).unwrap();
        assert!((hl.fraction_pairs_below(&hh) - 1.0).abs() < 1e-9);
        assert!(hh.fraction_pairs_below(&hl).abs() < 1e-9);
    }

    #[test]
    fn pairs_below_point_vs_uniform_matches_truth() {
        // X ≡ 7 against Y uniform on {0..13}: P(X < Y) = P(Y > 7) = 6/14,
        // P(Y < X) = P(Y < 7) = 7/14.
        let point = Histogram::equi_width(&[7.0; 50], 4).unwrap();
        let unif: Vec<f64> = (0..14).map(|i| i as f64).collect();
        let u = Histogram::equi_depth(&unif, 14).unwrap();
        let lt = point.fraction_pairs_below(&u);
        assert!((lt - 6.0 / 14.0).abs() < 0.05, "P(7<Y) {lt}");
        let gt = u.fraction_pairs_below(&point);
        assert!((gt - 7.0 / 14.0).abs() < 0.05, "P(Y<7) {gt}");
    }

    #[test]
    fn pairs_below_two_equal_points_leaves_all_mass_on_the_diagonal() {
        // Degenerate single-valued buckets on both sides: strictly-below is
        // 0 both ways, so below-or-equal (the complement of the reverse
        // strict) is 1 — the whole cross product is the equality diagonal.
        let a = Histogram::equi_width(&[5.0, 5.0, 5.0], 4).unwrap();
        let b = Histogram::equi_depth(&[5.0; 7], 2).unwrap();
        assert_eq!(a.fraction_pairs_below(&b), 0.0);
        assert_eq!(b.fraction_pairs_below(&a), 0.0);
        // Shifted point: everything on one side.
        let c = Histogram::equi_width(&[6.0, 6.0], 1).unwrap();
        assert_eq!(a.fraction_pairs_below(&c), 1.0);
        assert_eq!(c.fraction_pairs_below(&a), 0.0);
    }

    #[test]
    fn inclusive_selectivity_is_below_plus_equal_at_bucket_edges() {
        // Satellite audit: `<=` must be fraction_below + fraction_equal and
        // `>` its complement, exactly, at interior bucket boundaries where
        // the strict/inclusive distinction is easiest to get wrong.
        let h = Histogram::equi_width(&uniform_0_999(), 10).unwrap();
        for edge in [100.0, 500.0, 900.0] {
            let below = h.fraction_below(edge);
            let eq = h.fraction_equal(edge);
            assert!(eq > 0.0, "boundary value {edge} has mass");
            assert_eq!(h.selectivity(CmpOp::Le, edge), below + eq);
            assert_eq!(h.selectivity(CmpOp::Gt, edge), 1.0 - below - eq);
            assert_eq!(h.selectivity(CmpOp::Ge, edge), 1.0 - below);
        }
    }

    #[test]
    fn ne_is_complement_of_eq() {
        let h = Histogram::equi_depth(&uniform_0_999(), 10).unwrap();
        let eq = h.selectivity(CmpOp::Eq, 500.0);
        let ne = h.selectivity(CmpOp::Ne, 500.0);
        assert!((eq + ne - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mcv_tracks_top_values_exactly() {
        let mut values = vec![7.0; 500];
        values.extend(vec![3.0; 300]);
        values.extend((0..200).map(|i| 100.0 + i as f64));
        let mcv = MostCommonValues::build(&values, 2).unwrap();
        assert_eq!(mcv.entries().len(), 2);
        assert_eq!(mcv.eq_selectivity(7.0), Some(0.5));
        assert_eq!(mcv.eq_selectivity(3.0), Some(0.3));
        assert_eq!(mcv.eq_selectivity(100.0), None);
        assert_eq!(mcv.total_count(), 1000);
    }

    #[test]
    fn mcv_empty_input() {
        assert!(MostCommonValues::build(&[], 4).is_none());
        assert!(MostCommonValues::build(&[1.0], 0).is_none());
    }

    proptest::proptest! {
        #[test]
        fn selectivities_are_probabilities(
            values in proptest::collection::vec(-1000.0f64..1000.0, 1..300),
            v in -1500.0f64..1500.0,
            nb in 1usize..16,
        ) {
            for h in [
                Histogram::equi_width(&values, nb).unwrap(),
                Histogram::equi_depth(&values, nb).unwrap(),
            ] {
                for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                    let s = h.selectivity(op, v);
                    proptest::prop_assert!((0.0..=1.0).contains(&s), "{op:?} gave {s}");
                }
            }
        }

        #[test]
        fn constant_column_range_selectivities_are_degenerate(
            point in -1000.0f64..1000.0,
            n in 1usize..200,
            nb in 1usize..16,
            delta in 0.001f64..100.0,
        ) {
            let values = vec![point; n];
            let below = point - delta;
            let above = point + delta;
            for h in [
                Histogram::equi_width(&values, nb).unwrap(),
                Histogram::equi_depth(&values, nb).unwrap(),
            ] {
                // Every range selectivity on either side of the point is
                // exactly 0 or 1 — never an interpolated in-between.
                proptest::prop_assert_eq!(h.selectivity(CmpOp::Lt, below), 0.0);
                proptest::prop_assert_eq!(h.selectivity(CmpOp::Le, below), 0.0);
                proptest::prop_assert_eq!(h.selectivity(CmpOp::Gt, below), 1.0);
                proptest::prop_assert_eq!(h.selectivity(CmpOp::Ge, below), 1.0);
                proptest::prop_assert_eq!(h.selectivity(CmpOp::Lt, above), 1.0);
                proptest::prop_assert_eq!(h.selectivity(CmpOp::Le, above), 1.0);
                proptest::prop_assert_eq!(h.selectivity(CmpOp::Gt, above), 0.0);
                proptest::prop_assert_eq!(h.selectivity(CmpOp::Ge, above), 0.0);
                proptest::prop_assert_eq!(h.selectivity(CmpOp::Eq, point), 1.0);
            }
        }

        #[test]
        fn pairs_below_is_a_probability_and_strict_halves_fit(
            xs in proptest::collection::vec(-100.0f64..100.0, 1..120),
            ys in proptest::collection::vec(-100.0f64..100.0, 1..120),
            nb in 1usize..8,
        ) {
            for (hx, hy) in [
                (Histogram::equi_width(&xs, nb).unwrap(), Histogram::equi_width(&ys, nb).unwrap()),
                (Histogram::equi_depth(&xs, nb).unwrap(), Histogram::equi_depth(&ys, nb).unwrap()),
            ] {
                let lt = hx.fraction_pairs_below(&hy);
                let gt = hy.fraction_pairs_below(&hx);
                proptest::prop_assert!((0.0..=1.0).contains(&lt));
                proptest::prop_assert!((0.0..=1.0).contains(&gt));
                // P(X<Y) + P(Y<X) <= 1: the diagonal never goes negative.
                proptest::prop_assert!(lt + gt <= 1.0 + 1e-9, "lt {lt} + gt {gt} > 1");
            }
        }

        #[test]
        fn fraction_below_bounded_mid_bucket(
            values in proptest::collection::vec(-50.0f64..50.0, 1..100),
            nb in 1usize..8,
        ) {
            for h in [
                Histogram::equi_width(&values, nb).unwrap(),
                Histogram::equi_depth(&values, nb).unwrap(),
            ] {
                for b in h.buckets() {
                    let mid = (b.lo + b.hi) / 2.0;
                    proptest::prop_assert!(h.fraction_below(mid) <= 1.0);
                    proptest::prop_assert!(h.fraction_below(b.hi) <= 1.0);
                }
            }
        }

        #[test]
        fn fraction_below_is_monotone(
            values in proptest::collection::vec(0.0f64..100.0, 1..200),
        ) {
            let h = Histogram::equi_depth(&values, 8).unwrap();
            let mut prev = 0.0;
            for step in 0..=110 {
                let cur = h.fraction_below(step as f64);
                proptest::prop_assert!(cur + 1e-12 >= prev);
                prev = cur;
            }
        }
    }
}
