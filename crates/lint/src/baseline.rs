//! The ratchet baseline.
//!
//! `lint-baseline.json` grandfathers pre-existing violations per file per
//! lint. The contract: a (lint, file) pair may never exceed its recorded
//! count — new violations fail the run — and updates that raise any count
//! (or add a pair) only happen through `--baseline-update`, which is
//! itself gated behind `ELS_LINT_BASELINE_UPDATE=1` so the ratchet can
//! only be loosened deliberately. Counts drifting *below* the baseline are
//! reported as slack so a later deliberate update can tighten the file.

use std::collections::BTreeMap;

/// Per-lint, per-file grandfathered counts. BTreeMaps keep the serialized
/// form deterministic so baseline diffs review cleanly.
pub type Baseline = BTreeMap<String, BTreeMap<String, u64>>;

/// Serialize a baseline to the committed JSON form.
pub fn to_json(b: &Baseline) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"baseline\": {\n");
    let lints: Vec<_> = b.iter().filter(|(_, files)| !files.is_empty()).collect();
    for (li, (lint, files)) in lints.iter().enumerate() {
        s.push_str(&format!("    {}: {{\n", quote(lint)));
        for (fi, (file, count)) in files.iter().enumerate() {
            let comma = if fi + 1 < files.len() { "," } else { "" };
            s.push_str(&format!("      {}: {}{}\n", quote(file), count, comma));
        }
        let comma = if li + 1 < lints.len() { "," } else { "" };
        s.push_str(&format!("    }}{}\n", comma));
    }
    s.push_str("  }\n}\n");
    s
}

fn quote(s: &str) -> String {
    let mut out = String::from('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse the committed baseline. Strict about shape (it is our own file)
/// but tolerant of whitespace and key order.
pub fn from_json(text: &str) -> Result<Baseline, String> {
    let mut p = Parser { chars: text.chars().collect(), pos: 0 };
    let top = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err("trailing data after baseline JSON".to_string());
    }
    let Json::Object(top) = top else {
        return Err("baseline must be a JSON object".to_string());
    };
    let Some(Json::Object(by_lint)) = top.iter().find(|(k, _)| k == "baseline").map(|(_, v)| v)
    else {
        return Err("baseline JSON is missing the \"baseline\" object".to_string());
    };
    let mut out = Baseline::new();
    for (lint, files) in by_lint {
        let Json::Object(files) = files else {
            return Err(format!("baseline entry for {lint} must be an object"));
        };
        let entry = out.entry(lint.clone()).or_default();
        for (file, count) in files {
            let Json::Number(n) = count else {
                return Err(format!("count for {file} must be a number"));
            };
            if n.fract() != 0.0 || *n < 0.0 {
                return Err(format!("count for {file} must be a non-negative integer"));
            }
            entry.insert(file.clone(), *n as u64);
        }
    }
    Ok(out)
}

enum Json {
    Object(Vec<(String, Json)>),
    Number(f64),
    String(#[allow(dead_code)] String),
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some(&c) if c == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!("expected `{want}`, found {other:?}")),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some('{') => self.object(),
            Some('"') => Ok(Json::String(self.string()?)),
            Some(c) if c.is_ascii_digit() || *c == '-' => self.number(),
            other => Err(format!("unexpected character {other:?} in baseline JSON")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_char('{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect_char(':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.chars.get(self.pos) {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.pos) {
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.chars.get(self.pos) {
                        Some(&c @ ('"' | '\\' | '/')) => out.push(c),
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string in baseline JSON".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Json::Number).map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut b = Baseline::new();
        b.entry("panic-freedom".to_string())
            .or_default()
            .insert("crates/storage/src/column.rs".to_string(), 4);
        b.entry("panic-freedom".to_string())
            .or_default()
            .insert("crates/core/src/closure.rs".to_string(), 2);
        b
    }

    #[test]
    fn round_trips() {
        let b = sample();
        let parsed = from_json(&to_json(&b)).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::new();
        assert_eq!(from_json(&to_json(&b)).unwrap(), b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"version\": 1}").is_err());
        assert!(from_json("{\"baseline\": {\"l\": {\"f\": -1}}}").is_err());
        assert!(from_json("{\"baseline\": {\"l\": {\"f\": 1.5}}}").is_err());
    }
}
